#include "mem/memory_manager.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "obs/trace.hpp"
#include "tier/tier_chain.hpp"

namespace tmo::mem
{

namespace
{

/** Stall for a major fault on a LOST page: the kernel retries the
 *  read against the dead tier, times out, and zero-fills — a fixed,
 *  deterministic penalty far above any healthy device latency. */
constexpr std::uint64_t LOST_REFAULT_PENALTY_US = 50'000;

} // namespace

MemoryManager::MemoryManager(MemoryConfig config, std::uint64_t seed)
    : config_(config), rng_(seed)
{
    assert(config_.pageBytes > 0);
    assert(config_.ramBytes >= config_.pageBytes);
    assert(config_.heatDecayPeriod > 0);
}

MemoryManager::~MemoryManager() = default;

MemCg &
MemoryManager::attach(cgroup::Cgroup &cg,
                      backend::OffloadBackend *anon_backend,
                      backend::OffloadBackend *file_backend,
                      double compressibility)
{
    // Page::memcg is 16 bits and 0xffff is the free-slot sentinel:
    // one more attach would silently wrap the id and corrupt every
    // page it tags, so refuse loudly with the offender's name.
    if (memcgs_.size() >= 0xffff)
        throw std::length_error(
            "memcg table full (65535 cgroups): cannot attach '" +
            cg.name() + "' — Page::memcg is 16-bit with 0xffff "
                        "reserved as the free-slot sentinel");
    if (indexOf_.count(&cg))
        throw std::invalid_argument("cgroup already attached: " +
                                    cg.name());
    auto mcg = std::make_unique<MemCg>();
    mcg->cg = &cg;
    mcg->index = static_cast<std::uint16_t>(memcgs_.size());
    mcg->anonBackend = anon_backend;
    mcg->fileBackend = file_backend;
    mcg->compressibility = compressibility;
    registerBackend(anon_backend);
    registerBackend(file_backend);
    memcgs_.push_back(std::move(mcg));
    MemCg &ref = *memcgs_.back();
    indexOf_.emplace(&cg, ref.index);
    // Index this memcg under every ancestor, so subtree enumeration
    // (reclaim, info) is a direct lookup. Appending in attach order
    // preserves the visit order of the old whole-table scan.
    for (const cgroup::Cgroup *node = &cg; node; node = node->parent())
        subtree_[node].push_back(ref.index);

    // Wire the memory.reclaim control file to the reclaimer.
    cg.setReclaimFn([this](cgroup::Cgroup &target, std::uint64_t bytes,
                           sim::SimTime now) {
        return reclaim(target, bytes, now).reclaimedBytes;
    });
    return ref;
}

MemCg &
MemoryManager::attachChain(cgroup::Cgroup &cg, tier::TierChain *chain,
                           backend::OffloadBackend *file_backend,
                           double compressibility)
{
    // Register the tiers in chain order before the file backend, so a
    // one-tier chain produces the same registry layout as the raw
    // attach() it shims.
    MemCg &mcg = attach(cg, chain ? chain->tier(0) : nullptr,
                        file_backend, compressibility);
    if (chain)
        setAnonChain(cg, chain);
    return mcg;
}

void
MemoryManager::setAnonBackend(cgroup::Cgroup &cg,
                              backend::OffloadBackend *anon_backend)
{
    MemCg &mcg = memcgOf(cg);
    clearTierLists(mcg);
    mcg.anonBackend = anon_backend;
    mcg.anonChain = nullptr;
    registerBackend(anon_backend);
}

void
MemoryManager::setAnonChain(cgroup::Cgroup &cg, tier::TierChain *chain)
{
    MemCg &mcg = memcgOf(cg);
    clearTierLists(mcg);
    if (!chain) {
        mcg.anonBackend = nullptr;
        mcg.anonChain = nullptr;
        return;
    }
    // The chain itself is never registered: page.store always indexes
    // the concrete tier holding the page, and ramUsed() must count
    // each tier's DRAM overhead exactly once.
    mcg.anonBackend = chain;
    mcg.anonChain = chain;
    for (std::size_t i = 0; i < chain->size(); ++i)
        registerBackend(chain->tier(i));
    mcg.tierLists.assign(chain->size(), LruList{});
    mcg.tierBytes.assign(chain->size(), 0);
}

void
MemoryManager::setAnonTiering(cgroup::Cgroup &cg,
                              backend::OffloadBackend *anon_backend,
                              backend::OffloadBackend *cold_backend)
{
    // Legacy two-tier hierarchy: now a stock chain with the
    // working-set placement rule and no background movement, which
    // reproduces the historical warm/cold fall-through byte for byte.
    tier::TierChainConfig config;
    config.placement = tier::TierPlacement::WORKINGSET;
    config.moveBudgetBytes = 0;
    ownedChains_.push_back(std::make_unique<tier::TierChain>(
        "tiered",
        std::vector<backend::OffloadBackend *>{anon_backend,
                                               cold_backend},
        config));
    setAnonChain(cg, ownedChains_.back().get());
}

void
MemoryManager::clearTierLists(MemCg &mcg)
{
    for (auto &list : mcg.tierLists) {
        while (!list.empty()) {
            const PageIdx idx = list.head();
            list.remove(pages_, idx);
            pages_[idx].flags &= ~PG_TIER_LISTED;
        }
    }
    mcg.tierLists.clear();
    mcg.tierBytes.clear();
}

void
MemoryManager::tierListRemove(MemCg &mcg, PageIdx idx, Page &page)
{
    if (!(page.flags & PG_TIER_LISTED))
        return;
    assert(mcg.anonChain && page.store < backends_.size());
    const int t = mcg.anonChain->indexOf(backends_[page.store]);
    assert(t >= 0 &&
           static_cast<std::size_t>(t) < mcg.tierLists.size());
    mcg.tierLists[static_cast<std::size_t>(t)].remove(pages_, idx);
    auto &bytes = mcg.tierBytes[static_cast<std::size_t>(t)];
    bytes -= std::min<std::uint64_t>(bytes, page.storedBytes);
    page.flags &= ~PG_TIER_LISTED;
}

std::uint8_t
MemoryManager::registerBackend(backend::OffloadBackend *be)
{
    if (!be)
        return 0xff;
    const auto it = std::find(backends_.begin(), backends_.end(), be);
    if (it != backends_.end())
        return static_cast<std::uint8_t>(it - backends_.begin());
    // Page::store is 8 bits and 0xff is the "no backend" sentinel:
    // registering past it would alias the sentinel and misroute every
    // fault on pages stored there, so reject at registration time
    // (tier registries included — chains register each tier here).
    if (backends_.size() >= 0xff)
        throw std::length_error(
            "offload backend registry full (255 backends): cannot "
            "register '" + be->name() + "' — Page::store is 8-bit "
            "with 0xff reserved as the none sentinel");
    backends_.push_back(be);
    return static_cast<std::uint8_t>(backends_.size() - 1);
}

MemCg &
MemoryManager::memcgOf(const cgroup::Cgroup &cg)
{
    const auto it = indexOf_.find(&cg);
    if (it == indexOf_.end())
        throw std::invalid_argument("cgroup not attached: " + cg.name());
    return *memcgs_[it->second];
}

const MemCg &
MemoryManager::memcgOf(const cgroup::Cgroup &cg) const
{
    const auto it = indexOf_.find(&cg);
    if (it == indexOf_.end())
        throw std::invalid_argument("cgroup not attached: " + cg.name());
    return *memcgs_[it->second];
}

std::uint64_t
MemoryManager::ramUsed() const
{
    std::uint64_t used = residentPages_ * config_.pageBytes;
    for (const auto *be : backends_)
        used += be->residentOverheadBytes();
    return used;
}

void
MemoryManager::makeResident(PageIdx idx, MemCg &mcg, LruKind kind)
{
    // Fetch by index: callers reach this after reclaim/backend calls
    // that may have reallocated the page table.
    Page &page = pages_[idx];
    page.where = Where::RAM;
    page.storedBytes = 0;
    page.store = 0xff;
    mcg.lru.attachHead(pages_, idx, kind);
    mcg.cg->charge(config_.pageBytes);
    ++residentPages_;
}

void
MemoryManager::reservePages(std::uint64_t page_count)
{
    const auto want = static_cast<std::size_t>(
        std::min<std::uint64_t>(page_count, NO_PAGE));
    if (want <= pages_.capacity())
        return;
    pages_.reserve(want);
    shadowAges_.reserve(want);
}

sim::SimTime
MemoryManager::enforceLimit(cgroup::Cgroup &cg, std::uint64_t bytes,
                            sim::SimTime now)
{
    sim::SimTime stall = 0;
    // Walk up looking for a limited ancestor without headroom and
    // reclaim inside that subtree, as the kernel does on charge.
    for (int round = 0; round < 8; ++round) {
        if (cg.headroom() >= bytes)
            break;
        cgroup::Cgroup *limited = &cg;
        while (limited && limited->memMax() == cgroup::NO_LIMIT)
            limited = limited->parent();
        if (!limited)
            break;
        const auto outcome =
            reclaim(*limited, std::max<std::uint64_t>(
                                  bytes, 8 * config_.pageBytes),
                    now);
        stall += outcome.cpuTime;
        if (outcome.reclaimedBytes == 0) {
            ++oomEvents_;
            break;
        }
    }
    return stall;
}

sim::SimTime
MemoryManager::ensureRoom(std::uint64_t bytes, sim::SimTime now)
{
    sim::SimTime stall = 0;
    for (int round = 0; round < 16 && freeBytes() < bytes; ++round) {
        // Global direct reclaim: shrink the biggest consumer. Cgroups
        // within their memory.low protection are skipped while any
        // unprotected memory exists (second pass ignores protection,
        // as the kernel does under real shortage).
        MemCg *victim = nullptr;
        for (const bool honour_low : {true, false}) {
            for (auto &mcg : memcgs_) {
                if (mcg->lru.totalPages() == 0)
                    continue;
                if (honour_low && mcg->cg->lowProtected())
                    continue;
                if (!victim ||
                    mcg->lru.totalPages() > victim->lru.totalPages())
                    victim = mcg.get();
            }
            if (victim)
                break;
        }
        if (!victim) {
            ++oomEvents_;
            break;
        }
        const std::uint64_t want = std::max<std::uint64_t>(
            bytes, 16 * config_.pageBytes);
        const auto outcome = shrinkMemCg(*victim, want, now);
        stall += outcome.cpuTime;
        if (outcome.reclaimedBytes == 0) {
            ++oomEvents_;
            break;
        }
    }
    return stall;
}

PageIdx
MemoryManager::newPage(cgroup::Cgroup &cg, bool anon, bool resident,
                       sim::SimTime now, AccessResult *result)
{
    MemCg &mcg = memcgOf(cg);
    if (anon && !resident)
        throw std::invalid_argument("anon pages are created resident");
    if (!anon && !mcg.fileBackend)
        throw std::invalid_argument("file pages need a file backend");

    PageIdx idx;
    if (!freeSlots_.empty()) {
        idx = freeSlots_.back();
        freeSlots_.pop_back();
        pages_[idx] = Page{};
        shadowAges_[idx] = 0;
    } else {
        if (pages_.size() >= NO_PAGE)
            throw std::length_error("page table full");
        idx = static_cast<PageIdx>(pages_.size());
        pages_.emplace_back();
        shadowAges_.push_back(0);
    }
    {
        Page &page = pages_[idx];
        page.memcg = mcg.index;
        page.flags = anon ? PG_ANON : 0;
        mcg.ages.touch(pages_, idx, now);
        if (!resident) {
            page.where = Where::FS;
            return idx;
        }
    }

    AccessResult local;
    local.memStall += enforceLimit(cg, config_.pageBytes, now);
    local.memStall += ensureRoom(config_.pageBytes, now);
    // No Page reference may be held across the reclaim above: evicting
    // into a backend can allocate pages (growing pages_), so residency
    // is applied by index.
    // New pages start on the inactive list and earn activation by
    // reference, like the post-5.x kernel.
    makeResident(idx, mcg,
                 anon ? LruKind::INACTIVE_ANON : LruKind::INACTIVE_FILE);
    if (result)
        *result = local;
    return idx;
}

AccessResult
MemoryManager::access(PageIdx idx, sim::SimTime now)
{
    AccessResult result;
    Page &page = pages_[idx];
    MemCg &mcg = *memcgs_[page.memcg];
    mcg.ages.touch(pages_, idx, now);

    if (page.where == Where::RAM) {
        // Hit: second-chance / activation bookkeeping.
        if (page.lru == LruKind::INACTIVE_ANON ||
            page.lru == LruKind::INACTIVE_FILE) {
            if (page.referenced()) {
                // Second touch while inactive: promote.
                const LruKind active = page.isAnon()
                                           ? LruKind::ACTIVE_ANON
                                           : LruKind::ACTIVE_FILE;
                mcg.lru.detach(pages_, idx);
                mcg.lru.attachHead(pages_, idx, active);
                page.flags &= ~PG_REFERENCED;
                ++mcg.cg->stats().pgactivate;
                // Activation is the cheap warmth signal feeding
                // tiered placement (a fault later adds more heat).
                if (page.isAnon() && mcg.anonChain)
                    touchHeat(page,
                              heatEpochAt(now, config_.heatDecayPeriod),
                              1);
            } else {
                page.flags |= PG_REFERENCED;
            }
        } else {
            page.flags |= PG_REFERENCED;
        }
        return result;
    }

    // --- fault path ---------------------------------------------------
    // The virtual backend load() calls below may allocate pages and
    // reallocate pages_, so `page` must not be dereferenced past them:
    // everything the accounting needs is copied out first, and later
    // writes go through pages_[idx].
    result.faulted = true;

    backend::LoadResult load;
    LruKind target = LruKind::INACTIVE_FILE;

    switch (page.where) {
      case Where::ZSWAP:
      case Where::SWAP: {
        assert(page.store < backends_.size() &&
               "offloaded anon page without backend");
        // Leaving the offload tier: drop off the movement list and
        // bump heat — a re-faulted page is hot and the next eviction
        // will place it in a faster tier (promotion via refault).
        tierListRemove(mcg, idx, page);
        if (mcg.anonChain)
            touchHeat(page, heatEpochAt(now, config_.heatDecayPeriod),
                      2);
        backend::OffloadBackend *be = backends_[page.store];
        const std::uint32_t stored = page.storedBytes;
        const bool in_zswap = page.where == Where::ZSWAP;
        load = be->load(stored, now);
        if (in_zswap) {
            mcg.zswapBytes -=
                std::min<std::uint64_t>(mcg.zswapBytes, stored);
            // Compressed copy freed: uncharge its DRAM share.
            mcg.cg->uncharge(stored);
            ++mcg.cg->stats().zswpin;
        } else {
            mcg.swapBytes -=
                std::min<std::uint64_t>(mcg.swapBytes, stored);
        }
        ++mcg.cg->stats().pswpin;
        mcg.swapinRate.add(1.0, now);
        // Swap-in IO is the anon side of the reclaim cost balance
        // (kernel lru_note_cost), mirroring refaults on the file side.
        decayCosts(mcg, now);
        mcg.anonCost += 1.0;
        // Swap-in waits are memory stalls; disk swap also blocks on IO.
        result.memStall += load.latency;
        if (load.blockIo)
            result.ioStall += load.latency;
        // Anon workingset detection (kernel >= 5.9): only refaults
        // within the reuse distance re-activate; colder swap-ins go
        // inactive so they do not pollute the active list. The
        // working-set flag doubles as the warmth signal for tiered
        // placement (§5.2).
        if (shadowAges_[idx] != 0 &&
            mcg.nonresidentAgeAnon - shadowAges_[idx] <=
                mcg.lru.totalPages()) {
            result.refault = true;
            ++mcg.cg->stats().wsRefaultAnon;
            pages_[idx].flags |= PG_WORKINGSET;
            target = LruKind::ACTIVE_ANON;
        } else {
            target = LruKind::INACTIVE_ANON;
        }
        break;
      }
      case Where::FS: {
        assert(!page.isAnon());
        load = mcg.fileBackend->load(config_.pageBytes, now);
        ++mcg.cg->stats().pgfilefault;
        result.ioStall += load.latency;
        // Refault detection via shadow entry (§3.4).
        if (shadowAges_[idx] != 0) {
            const std::uint64_t distance =
                mcg.nonresidentAge - shadowAges_[idx];
            const std::uint64_t workingset = mcg.lru.totalPages();
            if (distance <= workingset) {
                result.refault = true;
                ++mcg.cg->stats().wsRefault;
                ++mcg.cg->stats().wsActivate;
                mcg.refaultRate.add(1.0, now);
                decayCosts(mcg, now);
                mcg.fileCost += 1.0;
                // Waiting for recently evicted cache is lost work due
                // to lack of memory, not merely IO.
                result.memStall += load.latency;
                pages_[idx].flags |= PG_WORKINGSET;
                target = LruKind::ACTIVE_FILE;
            } else {
                target = LruKind::INACTIVE_FILE;
            }
        } else {
            // First-ever read: plain IO wait, inactive list.
            target = LruKind::INACTIVE_FILE;
        }
        break;
      }
      case Where::LOST: {
        // The only copy died with its evacuated tier. The kernel's
        // IO-error path times out and hands the task a fresh
        // zero-filled page: a hard major fault, far costlier than any
        // healthy device read, and pure memory stall (no device IO).
        assert(mcg.lostPages > 0);
        --mcg.lostPages;
        ++mcg.cg->stats().lostRefault;
        result.memStall +=
            sim::fromUsec(static_cast<double>(LOST_REFAULT_PENALTY_US));
        if (page.isAnon() && mcg.anonChain)
            touchHeat(page, heatEpochAt(now, config_.heatDecayPeriod),
                      2);
        target = page.isAnon() ? LruKind::INACTIVE_ANON
                               : LruKind::INACTIVE_FILE;
        break;
      }
      case Where::RAM:
        break; // unreachable
    }

    result.memStall += enforceLimit(*mcg.cg, config_.pageBytes, now);
    result.memStall += ensureRoom(config_.pageBytes, now);
    makeResident(idx, mcg, target);
    return result;
}

void
MemoryManager::freePage(PageIdx idx)
{
    MemCg &mcg = *memcgs_[pages_[idx].memcg];
    tierListRemove(mcg, idx, pages_[idx]);
    // Copy what the release path needs before the virtual release()
    // call — backend implementations must not be trusted to leave the
    // page table's allocation alone.
    const Where where = pages_[idx].where;
    const std::uint8_t store = pages_[idx].store;
    const std::uint32_t stored = pages_[idx].storedBytes;
    switch (where) {
      case Where::RAM:
        mcg.lru.detach(pages_, idx);
        mcg.cg->uncharge(config_.pageBytes);
        assert(residentPages_ > 0);
        --residentPages_;
        break;
      case Where::ZSWAP:
        if (store < backends_.size())
            backends_[store]->release(stored);
        mcg.zswapBytes -=
            std::min<std::uint64_t>(mcg.zswapBytes, stored);
        mcg.cg->uncharge(stored);
        break;
      case Where::SWAP:
        if (store < backends_.size())
            backends_[store]->release(stored);
        mcg.swapBytes -= std::min<std::uint64_t>(mcg.swapBytes, stored);
        break;
      case Where::FS:
        break;
      case Where::LOST:
        assert(mcg.lostPages > 0);
        --mcg.lostPages;
        break;
    }
    mcg.ages.remove(pages_, idx);
    Page &page = pages_[idx];
    page.where = Where::FS;
    page.storedBytes = 0;
    page.store = 0xff;
    page.flags &= ~(PG_REFERENCED | PG_WORKINGSET | PG_DIRTY |
                    PG_TIER_LISTED);
    page.memcg = 0xffff; // detached from any cgroup until reused
    freeSlots_.push_back(idx);
}

ReclaimOutcome
MemoryManager::reclaim(cgroup::Cgroup &cg, std::uint64_t bytes,
                       sim::SimTime now)
{
    // Reclaim from the subtree: this cgroup if attached, plus any
    // attached descendants, proportional to their size. The subtree
    // index gives the members directly, in attach order — no scan of
    // the whole memcg table.
    ReclaimOutcome total;
    const auto sub = subtree_.find(&cg);
    if (sub == subtree_.end())
        return total;
    std::vector<MemCg *> targets;
    std::uint64_t resident = 0;
    for (const std::uint16_t index : sub->second) {
        MemCg *mcg = memcgs_[index].get();
        // Descendants inside their memory.low protection are
        // skipped; the explicitly targeted cgroup itself is not
        // (memory.reclaim semantics).
        if (mcg->lru.totalPages() > 0 &&
            (mcg->cg == &cg || !mcg->cg->lowProtected())) {
            targets.push_back(mcg);
            resident += mcg->lru.totalPages();
        }
    }
    if (targets.empty() || resident == 0)
        return total;

    // Distribute the request by running-error accumulation: each
    // target's exact share plus the residual of its predecessors,
    // rounded to whole pages. Nonzero shares are floored at one page,
    // so a request spread over many small cgroups still reclaims the
    // asked-for total instead of rounding every share down to zero.
    double carry = 0.0;
    for (MemCg *mcg : targets) {
        const double share = static_cast<double>(mcg->lru.totalPages()) /
                             static_cast<double>(resident);
        const double exact =
            share * static_cast<double>(bytes) + carry;
        auto want = static_cast<std::uint64_t>(
                        std::max(exact, 0.0) /
                        static_cast<double>(config_.pageBytes)) *
                    config_.pageBytes;
        if (want == 0 && exact > 0.0)
            want = config_.pageBytes;
        carry = exact - static_cast<double>(want);
        if (want == 0)
            continue;
        const auto outcome = shrinkMemCg(*mcg, want, now);
        total.reclaimedBytes += outcome.reclaimedBytes;
        total.scannedPages += outcome.scannedPages;
        total.anonPages += outcome.anonPages;
        total.filePages += outcome.filePages;
        total.cpuTime += outcome.cpuTime;
    }
    return total;
}

void
MemoryManager::kswapd(sim::SimTime now)
{
    const auto watermark = static_cast<std::uint64_t>(
        config_.kswapdWatermark * static_cast<double>(config_.ramBytes));
    if (freeBytes() >= watermark)
        return;
    ensureRoom(2 * watermark, now);
}

CgMemInfo
MemoryManager::info(const cgroup::Cgroup &cg) const
{
    CgMemInfo info;
    const auto sub = subtree_.find(&cg);
    if (sub == subtree_.end())
        return info;
    for (const std::uint16_t index : sub->second) {
        const MemCg &mcg = *memcgs_[index];
        info.anonBytes += mcg.lru.anonPages() * config_.pageBytes;
        info.fileBytes += mcg.lru.filePages() * config_.pageBytes;
        info.zswapBytes += mcg.zswapBytes;
        info.swapBytes += mcg.swapBytes;
    }
    info.residentBytes = info.anonBytes + info.fileBytes;
    return info;
}

IdleBreakdown
MemoryManager::idleBreakdown(const cgroup::Cgroup &cg,
                             sim::SimTime now) const
{
    const MemCg &mcg = memcgOf(cg);

    // The age list orders every live page (resident or offloaded) by
    // lastAccess, most recent first: walk the warm prefix and stop at
    // the first page older than the 5-minute horizon — everything
    // behind it is cold by construction.
    const std::uint64_t total = mcg.ages.size();
    std::uint64_t used1 = 0, used2 = 0, used5 = 0;
    for (PageIdx cur = mcg.ages.head(); cur != NO_PAGE;
         cur = pages_[cur].ageNext) {
        const Page &page = pages_[cur];
        const sim::SimTime age =
            now >= page.lastAccess ? now - page.lastAccess : 0;
        if (age <= 1 * sim::MINUTE)
            ++used1;
        else if (age <= 2 * sim::MINUTE)
            ++used2;
        else if (age <= 5 * sim::MINUTE)
            ++used5;
        else
            break;
    }
    IdleBreakdown breakdown;
    if (total == 0)
        return breakdown;
    const auto t = static_cast<double>(total);
    breakdown.used1min = static_cast<double>(used1) / t;
    breakdown.used2min = static_cast<double>(used2) / t;
    breakdown.used5min = static_cast<double>(used5) / t;
    breakdown.cold =
        std::max(0.0, 1.0 - breakdown.used1min - breakdown.used2min -
                          breakdown.used5min);
    return breakdown;
}

sim::SimTime
MemoryManager::tierMovePage(MemCg &mcg, PageIdx idx,
                            std::size_t from, std::size_t target,
                            std::size_t stop, sim::SimTime now)
{
    tier::TierChain *chain = mcg.anonChain;
    // Store into the destination first: acceptance (compressibility,
    // caps, offline tiers) is checked before the source copy is
    // touched, so a failed move leaves the page exactly where it was.
    const auto cs = chain->storeFrom(target, stop, config_.pageBytes,
                                     mcg.compressibility, now);
    if (!cs.result.accepted)
        return NO_MOVE;
    // Copy the source identity before the virtual load: both device
    // calls may allocate pages and reallocate the page table.
    const std::uint32_t src_bytes = pages_[idx].storedBytes;
    const bool src_zswap = pages_[idx].where == Where::ZSWAP;
    assert(pages_[idx].store < backends_.size());
    backend::OffloadBackend *source = backends_[pages_[idx].store];
    const auto load = source->load(src_bytes, now);

    // Ownership of storedBytes transfers atomically: uncharge the
    // source representation, then charge the destination's. Workload-
    // visible fault counters (pswpin & co.) stay untouched — moves
    // are background work, not faults.
    if (src_zswap) {
        mcg.zswapBytes -=
            std::min<std::uint64_t>(mcg.zswapBytes, src_bytes);
        mcg.cg->uncharge(src_bytes);
    } else {
        mcg.swapBytes -= std::min<std::uint64_t>(mcg.swapBytes,
                                                 src_bytes);
    }
    mcg.tierLists[from].remove(pages_, idx);
    auto &from_bytes = mcg.tierBytes[from];
    from_bytes -= std::min<std::uint64_t>(from_bytes, src_bytes);

    const auto to = static_cast<std::size_t>(cs.tierIndex);
    Page &page = pages_[idx];
    page.storedBytes = static_cast<std::uint32_t>(cs.result.storedBytes);
    page.store = registerBackend(cs.tier);
    if (cs.tier->storesInHostDram()) {
        page.where = Where::ZSWAP;
        mcg.zswapBytes += cs.result.storedBytes;
        mcg.cg->charge(cs.result.storedBytes);
    } else {
        page.where = Where::SWAP;
        mcg.swapBytes += cs.result.storedBytes;
        // Demotions to a block device are physical writes the
        // endurance regulator must see, same as evictions.
        if (cs.tier->isBlockDevice())
            mcg.swapoutBytes.add(static_cast<double>(config_.pageBytes),
                                 now);
    }
    mcg.tierLists[to].addHead(pages_, idx);
    mcg.tierBytes[to] += cs.result.storedBytes;
    return load.latency + cs.result.latency;
}

void
MemoryManager::losePage(MemCg &mcg, PageIdx idx)
{
    // Drop the dead copy's accounting but keep the logical page alive
    // (still on the age list): the loss is explicit — the next access
    // is a hard major fault, never silent corruption. Addressed by
    // index across the virtual release() call, like every other path
    // that talks to a backend.
    tierListRemove(mcg, idx, pages_[idx]);
    const Where where = pages_[idx].where;
    const std::uint8_t store = pages_[idx].store;
    const std::uint32_t stored = pages_[idx].storedBytes;
    if (store < backends_.size())
        backends_[store]->release(stored);
    if (where == Where::ZSWAP) {
        mcg.zswapBytes -=
            std::min<std::uint64_t>(mcg.zswapBytes, stored);
        mcg.cg->uncharge(stored);
    } else if (where == Where::SWAP) {
        mcg.swapBytes -= std::min<std::uint64_t>(mcg.swapBytes, stored);
    }
    Page &page = pages_[idx];
    page.where = Where::LOST;
    page.store = 0xff;
    page.storedBytes = 0;
    shadowAges_[idx] = 0;
    ++mcg.lostPages;
    ++mcg.cg->stats().tierLost;
}

TierMaintainOutcome
MemoryManager::tierMaintain(cgroup::Cgroup &cg, sim::SimTime now)
{
    TierMaintainOutcome outcome;
    MemCg &mcg = memcgOf(cg);
    tier::TierChain *chain = mcg.anonChain;
    if (!chain || chain->config().moveBudgetBytes == 0 ||
        chain->size() < 2)
        return outcome;
    const std::uint8_t epoch =
        heatEpochAt(now, config_.heatDecayPeriod);
    const std::uint32_t batch = chain->config().scanBatch;
    std::uint64_t budget = chain->config().moveBudgetBytes;
    std::uint64_t scanned = 0;

    // Evacuation pass (runs first — saving data from a dying tier
    // outranks rebalancing): re-evaluate tier health, then drain
    // every evacuating tier's list to whatever survivor accepts the
    // pages, within the same move budget. A page no survivor takes is
    // declared LOST: the copy is gone, but the loss is accounted and
    // the next access faults hard instead of corrupting silently.
    chain->updateHealth(now);
    for (std::size_t i = 0;
         i < chain->size() && budget >= config_.pageBytes; ++i) {
        if (!chain->tierEvacuating(i))
            continue;
        std::uint32_t examined = 0;
        PageIdx cur = mcg.tierLists[i].tail();
        while (cur != NO_PAGE && examined < batch &&
               budget >= config_.pageBytes) {
            // Walk pointer first: the move below talks to backends and
            // may reallocate the page table.
            const PageIdx warmer = pages_[cur].prev;
            ++examined;
            ++scanned;
            const auto latency = tierMovePage(mcg, cur, i, 0,
                                              chain->size(), now);
            if (latency == NO_MOVE) {
                losePage(mcg, cur);
                ++outcome.lostPages;
                chain->noteLost(1);
            } else {
                ++outcome.evacuatedPages;
                outcome.movedBytes += config_.pageBytes;
                outcome.deviceTime += latency;
                budget -= config_.pageBytes;
                ++mcg.cg->stats().tierEvacuate;
                chain->noteEvacuate(1);
            }
            cur = warmer;
        }
    }

    // Demote pass: walk each tier's list from the tail (oldest
    // stores, coldest by construction) and push pages whose decayed
    // heat places them below their current tier straight to their
    // target tier (falling further down if the target rejects).
    for (std::size_t i = 0;
         i + 1 < chain->size() && budget >= config_.pageBytes; ++i) {
        std::uint32_t examined = 0;
        PageIdx cur = mcg.tierLists[i].tail();
        while (cur != NO_PAGE && examined < batch &&
               budget >= config_.pageBytes) {
            const PageIdx warmer = pages_[cur].prev;
            ++examined;
            ++scanned;
            const int target = chain->placementIndex(
                decayedHeat(pages_[cur], epoch),
                pages_[cur].flags & PG_WORKINGSET);
            if (target > static_cast<int>(i)) {
                const auto latency = tierMovePage(
                    mcg, cur, i,
                    static_cast<std::size_t>(target), chain->size(),
                    now);
                if (latency == NO_MOVE)
                    break; // nothing below will take pages right now
                ++outcome.demotedPages;
                outcome.movedBytes += config_.pageBytes;
                outcome.deviceTime += latency;
                budget -= config_.pageBytes;
                ++mcg.cg->stats().tierDemote;
                chain->noteDemote(1, sim::toUsec(latency));
            }
            cur = warmer;
        }
    }

    // Promote pass: walk lower tiers from the head (newest stores,
    // warmest) and pull pages whose heat says they belong higher —
    // typically fall-through victims stored low because a faster
    // tier was full at eviction time.
    for (std::size_t i = chain->size();
         i-- > 1 && budget >= config_.pageBytes;) {
        std::uint32_t examined = 0;
        PageIdx cur = mcg.tierLists[i].head();
        while (cur != NO_PAGE && examined < batch &&
               budget >= config_.pageBytes) {
            const PageIdx colder = pages_[cur].next;
            ++examined;
            ++scanned;
            const int target = chain->placementIndex(
                decayedHeat(pages_[cur], epoch),
                pages_[cur].flags & PG_WORKINGSET);
            if (target < static_cast<int>(i)) {
                const auto latency = tierMovePage(
                    mcg, cur, i,
                    static_cast<std::size_t>(target), i, now);
                if (latency == NO_MOVE)
                    break; // faster tiers still full
                ++outcome.promotedPages;
                outcome.movedBytes += config_.pageBytes;
                outcome.deviceTime += latency;
                budget -= config_.pageBytes;
                ++mcg.cg->stats().tierPromote;
                chain->notePromote(1, sim::toUsec(latency));
            }
            cur = colder;
        }
    }

    outcome.cpuTime = sim::fromUsec(static_cast<double>(scanned) *
                                    config_.reclaimUsPerPage);
    if (trace_ &&
        (outcome.demotedPages || outcome.promotedPages ||
         outcome.evacuatedPages || outcome.lostPages)) {
        trace_->record(now, obs::TraceEventType::TIER_MOVE, 0,
                       static_cast<std::uint16_t>(mcg.cg->id()),
                       {static_cast<double>(outcome.demotedPages),
                        static_cast<double>(outcome.promotedPages),
                        static_cast<double>(outcome.movedBytes),
                        sim::toUsec(outcome.deviceTime),
                        sim::toUsec(outcome.cpuTime),
                        static_cast<double>(outcome.evacuatedPages),
                        static_cast<double>(outcome.lostPages)});
    }
    return outcome;
}

void
MemoryManager::decayCosts(MemCg &mcg, sim::SimTime now)
{
    if (now <= mcg.lastCostDecay) {
        mcg.lastCostDecay = now;
        return;
    }
    const double dt = sim::toSeconds(now - mcg.lastCostDecay);
    const double factor = std::exp2(-dt / config_.costHalfLifeSec);
    mcg.anonCost *= factor;
    mcg.fileCost *= factor;
    mcg.lastCostDecay = now;
}

} // namespace tmo::mem
