/**
 * @file
 * Intrusive LRU lists over the host page array.
 *
 * The kernel maintains an active/inactive list pair for both anon and
 * file pages per cgroup (§3.4); reclaim scans the inactive tails and
 * colder pages are evicted first. Lists are intrusive (prev/next
 * indices inside Page) so membership changes are O(1) with no
 * allocation.
 */

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "mem/page.hpp"

namespace tmo::mem
{

/** One doubly-linked page list. Head = most recent, tail = coldest. */
class LruList
{
  public:
    LruList() = default;

    /** Insert @p idx at the head (most-recently-used end). */
    void addHead(std::vector<Page> &pages, PageIdx idx);

    /** Insert @p idx at the tail (coldest end). */
    void addTail(std::vector<Page> &pages, PageIdx idx);

    /** Unlink @p idx from the list. */
    void remove(std::vector<Page> &pages, PageIdx idx);

    /** Move an already-linked page to the head. */
    void moveToHead(std::vector<Page> &pages, PageIdx idx);

    PageIdx head() const { return head_; }
    PageIdx tail() const { return tail_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

  private:
    PageIdx head_ = NO_PAGE;
    PageIdx tail_ = NO_PAGE;
    std::size_t size_ = 0;
};

/** The four per-cgroup LRU lists plus size helpers. */
class LruVec
{
  public:
    LruList &list(LruKind kind)
    {
        return lists_[static_cast<std::size_t>(kind)];
    }

    const LruList &list(LruKind kind) const
    {
        return lists_[static_cast<std::size_t>(kind)];
    }

    /** Resident anon pages (both lists). */
    std::size_t
    anonPages() const
    {
        return list(LruKind::INACTIVE_ANON).size() +
               list(LruKind::ACTIVE_ANON).size();
    }

    /** Resident file pages (both lists). */
    std::size_t
    filePages() const
    {
        return list(LruKind::INACTIVE_FILE).size() +
               list(LruKind::ACTIVE_FILE).size();
    }

    /** All resident pages. */
    std::size_t totalPages() const { return anonPages() + filePages(); }

    /**
     * Detach a page from whatever list it is on (no-op when not
     * linked) and clear its lru tag.
     */
    void detach(std::vector<Page> &pages, PageIdx idx);

    /** Attach a page to the head of @p kind and tag it. */
    void attachHead(std::vector<Page> &pages, PageIdx idx, LruKind kind);

  private:
    std::array<LruList, NUM_LRU_LISTS> lists_;
};

} // namespace tmo::mem
