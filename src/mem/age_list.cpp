#include "mem/age_list.hpp"

#include <cassert>

namespace tmo::mem
{

void
AgeList::touch(std::vector<Page> &pages, PageIdx idx, sim::SimTime now)
{
    Page &page = pages[idx];
    page.lastAccess = now;
    if (head_ == idx &&
        (page.ageNext == NO_PAGE || pages[page.ageNext].lastAccess <= now)) {
        // Already the most recent entry — the common case while the
        // simulation clock is monotonic. (An out-of-order touch can
        // age the head below its successor; then it must re-insert
        // like everyone else.)
        return;
    }
    remove(pages, idx);
    insertSorted(pages, idx);
}

void
AgeList::insertSorted(std::vector<Page> &pages, PageIdx idx)
{
    Page &page = pages[idx];
    assert(page.agePrev == NO_PAGE && page.ageNext == NO_PAGE);

    if (head_ == NO_PAGE) {
        head_ = tail_ = idx;
        ++size_;
        return;
    }
    if (pages[head_].lastAccess <= page.lastAccess) {
        // Fast path: newest access, which is every access while the
        // simulation clock is monotonic.
        page.ageNext = head_;
        pages[head_].agePrev = idx;
        head_ = idx;
        ++size_;
        return;
    }
    // Out-of-order timestamp: walk to the first entry not newer than
    // this page and insert in front of it.
    PageIdx cur = pages[head_].ageNext;
    while (cur != NO_PAGE && pages[cur].lastAccess > page.lastAccess)
        cur = pages[cur].ageNext;
    if (cur == NO_PAGE) {
        page.agePrev = tail_;
        pages[tail_].ageNext = idx;
        tail_ = idx;
    } else {
        page.agePrev = pages[cur].agePrev;
        page.ageNext = cur;
        pages[pages[cur].agePrev].ageNext = idx;
        pages[cur].agePrev = idx;
    }
    ++size_;
}

void
AgeList::remove(std::vector<Page> &pages, PageIdx idx)
{
    Page &page = pages[idx];
    const bool linked = head_ == idx || page.agePrev != NO_PAGE ||
                        page.ageNext != NO_PAGE;
    if (!linked)
        return;
    if (page.agePrev != NO_PAGE)
        pages[page.agePrev].ageNext = page.ageNext;
    else {
        assert(head_ == idx);
        head_ = page.ageNext;
    }
    if (page.ageNext != NO_PAGE)
        pages[page.ageNext].agePrev = page.agePrev;
    else {
        assert(tail_ == idx);
        tail_ = page.agePrev;
    }
    page.agePrev = NO_PAGE;
    page.ageNext = NO_PAGE;
    assert(size_ > 0);
    --size_;
}

} // namespace tmo::mem
