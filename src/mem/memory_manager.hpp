/**
 * @file
 * Host memory management: allocation, fault handling, and reclaim.
 *
 * This is the simulator's stand-in for the Linux MM subsystem the
 * paper modifies (§3.4): per-cgroup active/inactive LRU lists,
 * non-resident (shadow entry) tracking with refault detection, and a
 * reclaim algorithm that — in TMO mode — reclaims exclusively from
 * file cache until refaults occur and then balances file reclaim
 * against anonymous swap by relative IO cost. A legacy mode reproduces
 * the historic swap-as-emergency-overflow behaviour for ablation.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "backend/backend.hpp"
#include "cgroup/cgroup.hpp"
#include "mem/age_list.hpp"
#include "mem/lru.hpp"
#include "mem/page.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "stats/ewma.hpp"

namespace tmo::obs
{
class TraceRing;
}

namespace tmo::tier
{
class TierChain;
}

namespace tmo::mem
{

/** Reclaim algorithm selection. */
enum class ReclaimMode {
    /**
     * TMO (§3.4): file-only until refaults appear, then balance file
     * vs. anon scanning by relative refault / swap-in cost.
     */
    TMO_BALANCED,
    /**
     * Pre-TMO kernel behaviour: skew heavily towards file cache and
     * touch swap only when file cache is nearly exhausted.
     */
    LEGACY_FILE_FIRST,
};

/** Static memory-manager configuration. */
struct MemoryConfig {
    /** Host DRAM capacity. */
    std::uint64_t ramBytes = 4ull << 30;
    /** Page size (coarser than 4 KiB to keep page counts tractable;
     *  all reported quantities are bytes/ratios, so this is benign). */
    std::uint32_t pageBytes = 64 * 1024;
    /** Reclaim algorithm (TMO vs. legacy). */
    ReclaimMode mode = ReclaimMode::TMO_BALANCED;
    /** kswapd keeps free memory above this fraction of capacity. */
    double kswapdWatermark = 0.02;
    /** CPU time per scanned page charged to direct reclaim. */
    double reclaimUsPerPage = 0.3;
    /** Pages scanned per reclaim batch. */
    std::uint32_t scanBatch = 32;
    /** Demote when inactive < active * inactiveRatio. */
    double inactiveRatio = 0.5;
    /** Half life of the anon/file cost balance (seconds). */
    double costHalfLifeSec = 120.0;
    /**
     * LRU mis-aging: probability, per evicted page, that a page from
     * the active tail is demoted straight to the inactive tail. Models
     * the sampling-based LRU ordering the paper describes (§5.3: "we
     * rely on sampling in software to maintain the LRU ordering...
     * the overhead scales with the targeted paging rate") — working-
     * set evictions grow with reclaim volume, which is what makes
     * over-aggressive configurations hurt (Fig. 13).
     */
    double lruMisagingRate = 0.10;
    /**
     * Length of one hotness decay epoch: a page's heat counter is
     * halved per elapsed epoch (tiered placement, TPP-style). Only
     * consulted when a cgroup runs a TierChain.
     */
    sim::SimTime heatDecayPeriod = 30 * sim::SEC;
};

/** Outcome of one page access. */
struct AccessResult {
    /** Page was not resident and had to be brought in. */
    bool faulted = false;
    /** The fault was a refault of recently evicted working set. */
    bool refault = false;
    /** Stall time counting towards memory pressure. */
    sim::SimTime memStall = 0;
    /** Stall time counting towards IO pressure. */
    sim::SimTime ioStall = 0;
};

/** Result of a reclaim pass. */
struct ReclaimOutcome {
    std::uint64_t reclaimedBytes = 0;
    std::uint64_t scannedPages = 0;
    std::uint64_t anonPages = 0;
    std::uint64_t filePages = 0;
    /** CPU time consumed (charged as memstall on direct reclaim). */
    sim::SimTime cpuTime = 0;
};

/** Result of one background tier-maintenance pass. */
struct TierMaintainOutcome {
    /** Pages moved down the chain (heat decayed below their tier). */
    std::uint64_t demotedPages = 0;
    /** Pages moved up the chain (hot but stuck low after an earlier
     *  fall-through). */
    std::uint64_t promotedPages = 0;
    /** Pages drained off evacuating (offline / long-FAILED) tiers. */
    std::uint64_t evacuatedPages = 0;
    /** Pages whose only copy died with an unsavable tier. */
    std::uint64_t lostPages = 0;
    /** Uncompressed bytes moved (counts against the chain budget). */
    std::uint64_t movedBytes = 0;
    /** Device time consumed by the moves (store + load latencies). */
    sim::SimTime deviceTime = 0;
    /** CPU time for the scans (reclaimUsPerPage per examined page). */
    sim::SimTime cpuTime = 0;
};

/** Per-cgroup memory breakdown for reports. */
struct CgMemInfo {
    std::uint64_t anonBytes = 0;
    std::uint64_t fileBytes = 0;
    std::uint64_t zswapBytes = 0;  ///< DRAM held by compressed pages
    std::uint64_t swapBytes = 0;   ///< SSD swap slots in use
    std::uint64_t residentBytes = 0;
};

/** Fraction of a cgroup's pages by idle age (Fig. 2). */
struct IdleBreakdown {
    double used1min = 0.0;
    double used2min = 0.0; ///< additional fraction (1, 2] min
    double used5min = 0.0; ///< additional fraction (2, 5] min
    double cold = 0.0;     ///< untouched for > 5 min (incl. offloaded)
};

/**
 * Per-cgroup memory state (the kernel's mem_cgroup + lruvec).
 * Exposed for tests and the reclaim implementation.
 */
struct MemCg {
    cgroup::Cgroup *cg = nullptr;
    /** This memcg's slot in the manager's table — cached at attach
     *  time so per-page paths never scan the table (Page::memcg holds
     *  the same value). */
    std::uint16_t index = 0;
    LruVec lru;
    /** All live pages of this cgroup by lastAccess, most recent first
     *  (incremental idle-age accounting; see AgeList). */
    AgeList ages;
    /** Offload backend for anon pages (zswap pool, swap partition,
     *  or a TierChain); nullptr = file-only mode (no swapping). When
     *  anonChain is set this aliases it, so controllers keep reading
     *  aggregate status/utilization through the same pointer. */
    backend::OffloadBackend *anonBackend = nullptr;
    /** The tier chain behind anonBackend, or nullptr for a raw
     *  single backend. Reclaim then places pages by hotness (or the
     *  legacy working-set rule) and falls through rejected stores
     *  down the chain (§5.2). */
    tier::TierChain *anonChain = nullptr;
    /**
     * Per-tier lists of this cgroup's offloaded pages (index =
     * chain tier), insertion-ordered newest first. They reuse
     * Page::prev/next — free while a page is off the resident LRUs —
     * so background demotion/promotion scans touch only this
     * cgroup's pages on the affected tier. Sized by setAnonChain.
     */
    std::vector<LruList> tierLists;
    /** Bytes this cgroup stores per chain tier (occupancy metrics). */
    std::vector<std::uint64_t> tierBytes;
    /** Filesystem backend for file pages. */
    backend::OffloadBackend *fileBackend = nullptr;
    /** Mean compression ratio of this workload's anon data. */
    double compressibility = 3.0;

    /** Non-resident age: bumped on every file eviction (shadow entries). */
    std::uint64_t nonresidentAge = 0;
    /** Anon-side non-resident age (workingset detection for anonymous
     *  pages, as in kernels >= 5.9). */
    std::uint64_t nonresidentAgeAnon = 0;

    /** Decaying reclaim-cost balance (kernel lru_note_cost). */
    double anonCost = 0.0;
    double fileCost = 0.0;
    sim::SimTime lastCostDecay = 0;

    /** Smoothed swap-in (promotion) rate, pages/s. */
    stats::RateMeter swapinRate;
    /** Smoothed file refault rate, pages/s. */
    stats::RateMeter refaultRate;
    /** Smoothed swap-out rate, bytes/s (write-endurance view). */
    stats::RateMeter swapoutBytes;

    std::uint64_t zswapBytes = 0;
    std::uint64_t swapBytes = 0;
    /** Pages the backend refused (incompressible / swap full). */
    std::uint64_t storeRejects = 0;
    /** Pages currently in Where::LOST (copy died with its tier). */
    std::uint64_t lostPages = 0;
};

/**
 * The host memory manager.
 *
 * Thread model: single-threaded, driven by the simulation loop.
 * All byte amounts are multiples of pageBytes internally.
 */
class MemoryManager
{
  public:
    MemoryManager(MemoryConfig config, std::uint64_t seed = 3);
    ~MemoryManager(); // out of line: ownedChains_ holds incomplete type

    MemoryManager(const MemoryManager &) = delete;
    MemoryManager &operator=(const MemoryManager &) = delete;

    // --- setup ---------------------------------------------------------

    /**
     * Put a cgroup under memory management and install its
     * memory.reclaim hook.
     *
     * @param cg The container.
     * @param anon_backend Backend for anon pages (nullptr: file-only).
     * @param file_backend Backend for file pages (required to create
     *        file pages).
     * @param compressibility Mean anon compression ratio.
     */
    MemCg &attach(cgroup::Cgroup &cg,
                  backend::OffloadBackend *anon_backend,
                  backend::OffloadBackend *file_backend,
                  double compressibility = 3.0);

    /**
     * attach() with a TierChain as the anon backend: reclaim places
     * pages across the chain's tiers and tierMaintain() moves them
     * as their hotness changes.
     */
    MemCg &attachChain(cgroup::Cgroup &cg, tier::TierChain *chain,
                       backend::OffloadBackend *file_backend,
                       double compressibility = 3.0);

    /** Switch a cgroup's anon backend (e.g. Fig. 11 phase changes).
     *  Pages already offloaded stay in their old backend until
     *  faulted back. */
    void setAnonBackend(cgroup::Cgroup &cg,
                        backend::OffloadBackend *anon_backend);

    /** Switch a cgroup onto a tier chain (phase changes with tiering).
     *  Pages offloaded under the old configuration drop off the
     *  movement lists and stay put until faulted back. */
    void setAnonChain(cgroup::Cgroup &cg, tier::TierChain *chain);

    /**
     * @deprecated Pre-chain two-tier hierarchy (§5.2). Builds an
     * internally owned two-tier TierChain with the legacy working-set
     * placement and a zero movement budget — byte-identical to the
     * historical anonColdBackend behaviour. Use attachChain() /
     * setAnonChain() for new code.
     */
    void setAnonTiering(cgroup::Cgroup &cg,
                        backend::OffloadBackend *anon_backend,
                        backend::OffloadBackend *cold_backend);

    // --- page lifecycle -------------------------------------------------

    /**
     * Create one page owned by @p cg.
     *
     * Anonymous pages are created resident (allocation is the first
     * touch) and may trigger direct reclaim when memory is tight; the
     * stall is reported through @p result. File pages can be created
     * non-resident (@p resident = false), modelling files not yet read.
     */
    PageIdx newPage(cgroup::Cgroup &cg, bool anon, bool resident,
                    sim::SimTime now, AccessResult *result = nullptr);

    /**
     * Pre-size the page table (and its parallel cold arrays) for
     * @p page_count total pages so steady-state growth never
     * reallocates mid-run. Called by the Host for each app's declared
     * footprint; growing past the reservation stays correct (newPage
     * reallocates as before), just slower. Capped at NO_PAGE.
     */
    void reservePages(std::uint64_t page_count);

    /**
     * Touch a page: LRU bookkeeping on hit, full fault path on miss
     * (backend read, refault detection, residency charge).
     */
    AccessResult access(PageIdx idx, sim::SimTime now);

    /** Release a page entirely (workload freed the memory). */
    void freePage(PageIdx idx);

    // --- reclaim ---------------------------------------------------------

    /**
     * Reclaim up to @p bytes from @p cg's subtree. This implements the
     * memory.reclaim control file; Senpai's proactive reclaim enters
     * here and does NOT stall the workload (the cost shows up later as
     * refaults, exactly as in production).
     */
    ReclaimOutcome reclaim(cgroup::Cgroup &cg, std::uint64_t bytes,
                           sim::SimTime now);

    /**
     * Background reclaim: if free memory is below the watermark, shrink
     * the largest cgroups until it recovers. Call periodically.
     */
    void kswapd(sim::SimTime now);

    /**
     * One budgeted tier-maintenance pass for @p cg (TPP-style):
     * demote offloaded pages whose decayed heat places them below
     * their current tier, promote pages stuck below their warmth
     * (fall-through victims), both bounded by the chain's
     * moveBudgetBytes and scanBatch. No-op without a chain or with a
     * zero budget (legacy shims). The Host schedules this per
     * movePeriod; movement cost is returned so callers can charge it.
     */
    TierMaintainOutcome tierMaintain(cgroup::Cgroup &cg,
                                     sim::SimTime now);

    // --- accounting & introspection --------------------------------------

    std::uint64_t ramCapacity() const { return config_.ramBytes; }

    /**
     * Resize host DRAM mid-run (fault injection: ballooning, bank
     * offlining). A shrink below current usage is recovered by the
     * next kswapd pass; the floor keeps the host minimally viable.
     */
    void
    setRamBytes(std::uint64_t bytes)
    {
        config_.ramBytes = std::max<std::uint64_t>(
            bytes, 16ull * config_.pageBytes);
    }

    /** Resident pages plus compressed-pool DRAM across backends. */
    std::uint64_t ramUsed() const;

    std::uint64_t
    freeBytes() const
    {
        const std::uint64_t used = ramUsed();
        return used >= config_.ramBytes ? 0 : config_.ramBytes - used;
    }

    std::uint32_t pageBytes() const { return config_.pageBytes; }
    const MemoryConfig &config() const { return config_; }

    /** Per-cgroup byte breakdown. */
    CgMemInfo info(const cgroup::Cgroup &cg) const;

    /**
     * Idle-age breakdown of a cgroup's pages (Fig. 2). Served from
     * the per-memcg age list: cost is O(pages touched within the
     * 5-minute horizon), not O(all pages) — cheap enough for the
     * working-set profiler to poll every interval.
     */
    IdleBreakdown idleBreakdown(const cgroup::Cgroup &cg,
                                sim::SimTime now) const;

    /** Number of emergency situations where reclaim found nothing. */
    std::uint64_t oomEvents() const { return oomEvents_; }

    /** The page table (tests and benches). */
    std::vector<Page> &pages() { return pages_; }
    const std::vector<Page> &pages() const { return pages_; }

    /**
     * Shadow entry of page @p idx (SoA cold array): the cgroup's
     * non-resident age when the page was last evicted, 0 = never
     * evicted. Refault distance is the difference to the cgroup's
     * current age (§3.4). Kept out of struct Page so the hot
     * LRU/reclaim path stays one cache line per page.
     */
    std::uint64_t shadowAge(PageIdx idx) const { return shadowAges_[idx]; }

    /** Overwrite a page's shadow entry (tests). */
    void setShadowAge(PageIdx idx, std::uint64_t age)
    {
        shadowAges_[idx] = age;
    }

    /** Per-cgroup state; cg must be attached. */
    MemCg &memcgOf(const cgroup::Cgroup &cg);
    const MemCg &memcgOf(const cgroup::Cgroup &cg) const;

    // --- invariant-auditor views (read-only) ------------------------------

    /** Attached memcgs, in attach order (invariant auditing). */
    std::size_t memcgCount() const { return memcgs_.size(); }
    const MemCg &memcgAt(std::size_t i) const { return *memcgs_[i]; }

    /** Every backend pages can reference via Page::store. */
    const std::vector<backend::OffloadBackend *> &
    backendRegistry() const
    {
        return backends_;
    }

    /** Global resident-page count (must equal the LRU sums). */
    std::uint64_t residentPages() const { return residentPages_; }

    /** Record a RECLAIM_PASS event (anon/file split, cost balance)
     *  per shrink pass into @p ring; nullptr detaches. */
    void setTrace(obs::TraceRing *ring) { trace_ = ring; }

  private:
    friend struct ReclaimPass;

    /** Direct-reclaim path: make room for @p bytes of new residency. */
    sim::SimTime ensureRoom(std::uint64_t bytes, sim::SimTime now);

    /** Enforce @p cg's memory.max on a new charge of @p bytes. */
    sim::SimTime enforceLimit(cgroup::Cgroup &cg, std::uint64_t bytes,
                              sim::SimTime now);

    /**
     * Make page @p idx resident and charge it. Takes the index, not a
     * Page reference: callers typically arrive here after reclaim or
     * backend calls that may have grown pages_ and invalidated any
     * outstanding reference.
     */
    void makeResident(PageIdx idx, MemCg &mcg, LruKind kind);

    /** Core shrink loop, shared by all reclaim entry points. */
    ReclaimOutcome shrinkMemCg(MemCg &mcg, std::uint64_t target_bytes,
                               sim::SimTime now);

    /** Decay the anon/file cost balance towards zero. */
    void decayCosts(MemCg &mcg, sim::SimTime now);

    /** Register a backend; returns its stable registry index. */
    std::uint8_t registerBackend(backend::OffloadBackend *be);

    /** Drop every page off @p mcg's tier lists (chain switch). */
    void clearTierLists(MemCg &mcg);

    /** Unlink an offloaded page from its tier list, if listed. */
    void tierListRemove(MemCg &mcg, PageIdx idx, Page &page);

    /** tierMovePage() result when no tier accepted the page. */
    static constexpr sim::SimTime NO_MOVE = ~sim::SimTime{0};

    /**
     * Move one offloaded page into the tier accepting it among
     * [target, stop): store into the destination first (acceptance
     * check), then load-free the source copy, keeping all cgroup
     * byte accounting (zswap DRAM charge, swap slots, endurance)
     * consistent across the move. Returns the device time, or
     * NO_MOVE when no tier accepted. Addressed by index only: the
     * virtual store/load calls may allocate pages (reallocating
     * pages_), so no Page reference survives them.
     */
    sim::SimTime tierMovePage(MemCg &mcg, PageIdx idx,
                              std::size_t from, std::size_t target,
                              std::size_t stop, sim::SimTime now);

    /**
     * Declare an offloaded page's copy unrecoverable (its tier is
     * being evacuated and no survivor accepted it): release the dead
     * tier's accounting and park the page in Where::LOST, where the
     * next access is a hard major fault instead of silent corruption.
     */
    void losePage(MemCg &mcg, PageIdx idx);

    MemoryConfig config_;
    sim::Rng rng_;
    std::vector<Page> pages_;
    /**
     * Cold SoA companion to pages_ (same indexing): shadow entries for
     * refault detection. Touched only on eviction and refault, so the
     * hot reclaim scan stays within the 40-byte Page line.
     */
    std::vector<std::uint64_t> shadowAges_;
    /** Recycled page-table slots (freed pages). */
    std::vector<PageIdx> freeSlots_;
    /**
     * Scratch for the batched reclaim scan: the tail indices gathered
     * per shrink batch. A member (not a local) so the hot loop never
     * allocates; sized scanBatch. Single-threaded like everything here.
     */
    std::vector<PageIdx> scanScratch_;
    std::vector<std::unique_ptr<MemCg>> memcgs_;
    /**
     * Cgroup -> memcg index, filled at attach time: memcgOf() and the
     * page hot paths are O(1) lookups instead of linear scans of
     * memcgs_.
     */
    std::unordered_map<const cgroup::Cgroup *, std::uint16_t> indexOf_;
    /**
     * For every cgroup on the path from an attached memcg to the
     * root: the attached memcg indices inside that cgroup's subtree,
     * in attach order. Lets reclaim()/info() enumerate a subtree
     * directly instead of testing every memcg for ancestry. Attach
     * order equals memcgs_ index order, so proportional reclaim
     * visits targets exactly as the historical linear scan did.
     */
    std::unordered_map<const cgroup::Cgroup *, std::vector<std::uint16_t>>
        subtree_;
    std::vector<backend::OffloadBackend *> backends_;
    /** Chains built internally for the deprecated setAnonTiering(). */
    std::vector<std::unique_ptr<tier::TierChain>> ownedChains_;
    obs::TraceRing *trace_ = nullptr;
    std::uint64_t residentPages_ = 0;
    std::uint64_t oomEvents_ = 0;
};

} // namespace tmo::mem
