/**
 * @file
 * Per-cgroup page age list (incremental idle/coldness accounting).
 *
 * Fig. 2's idle-age breakdown used to be a full sweep over the host
 * page table — O(#pages x #cgroups) when the working-set profiler
 * polls every interval. Instead, every live page of a cgroup is kept
 * on one intrusive list ordered by lastAccess, most recent at the
 * head. Maintaining the order costs O(1) per access while simulation
 * time advances monotonically (the page moves to the head); the
 * breakdown then walks only the warm prefix and attributes the entire
 * unvisited tail to the cold bucket.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "mem/page.hpp"
#include "sim/time.hpp"

namespace tmo::mem
{

/**
 * Intrusive list of all live pages of one cgroup, ordered by
 * lastAccess descending (head = most recently touched). Uses the
 * Page::agePrev/ageNext links, so membership changes allocate nothing.
 */
class AgeList
{
  public:
    AgeList() = default;

    /**
     * Record an access (or creation) of @p idx at @p now: sets the
     * page's lastAccess and re-positions it. O(1) when @p now is >=
     * the current head's lastAccess — always true under monotonic
     * simulation time; out-of-order timestamps (hand-driven tests)
     * fall back to a sorted walk from the head.
     */
    void touch(std::vector<Page> &pages, PageIdx idx, sim::SimTime now);

    /** Unlink @p idx (page freed). No-op when not linked. */
    void remove(std::vector<Page> &pages, PageIdx idx);

    PageIdx head() const { return head_; }
    PageIdx tail() const { return tail_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

  private:
    /** Insert an unlinked page in lastAccess order. */
    void insertSorted(std::vector<Page> &pages, PageIdx idx);

    PageIdx head_ = NO_PAGE;
    PageIdx tail_ = NO_PAGE;
    std::size_t size_ = 0;
};

} // namespace tmo::mem
