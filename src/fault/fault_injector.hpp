/**
 * @file
 * Delivers a FaultPlan into one host.
 *
 * The injector schedules every plan event on the host's own shard
 * clock (sim::Simulation), so injection composes with the fleet
 * engine's determinism guarantee: for a given seed and plan the run is
 * bit-identical for any `--jobs N`, because a shard's event stream
 * never depends on other shards or on wall-clock. Injection is
 * one-way — faults mutate backend/device/controller state; recovery
 * happens either through explicit plan events (ssd-online) or through
 * the graceful-degradation paths the faults exercise.
 */

#pragma once

#include <array>
#include <cstdint>

#include "backend/backend.hpp"
#include "core/controller.hpp"
#include "fault/fault_plan.hpp"
#include "host/host.hpp"

namespace tmo::fault
{

/** Worst status across a host's anon offload backends (swap + zswap). */
backend::BackendStatus hostBackendStatus(host::Host &machine);

/** Total backend degradation events a host has absorbed: swap IO
 *  errors (store + load) plus zswap store rejections. */
std::uint64_t hostDegradationEvents(host::Host &machine);

/** Schedules one FaultPlan onto one host's simulation clock. */
class FaultInjector
{
  public:
    /**
     * @param machine The target host (must outlive the injector).
     * @param plan The schedule to deliver.
     */
    FaultInjector(host::Host &machine, FaultPlan plan);

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /**
     * Schedule every plan event on the host's event queue (events
     * whose time already passed fire immediately). Idempotent.
     */
    void arm();

    const FaultPlan &plan() const { return plan_; }

    /** Events injected so far. */
    std::uint64_t injected() const { return injected_; }

    /** Events injected so far of one kind. */
    std::uint64_t
    injectedOf(FaultKind kind) const
    {
        return perKind_[static_cast<std::size_t>(kind)];
    }

    /** Telemetry rows for summary tables (fault + degradation
     *  counters, current backend status). */
    core::StatsRow statsRow() const;

  private:
    void apply(const FaultEvent &event);

    host::Host &host_;
    FaultPlan plan_;
    bool armed_ = false;
    std::uint64_t injected_ = 0;
    std::array<std::uint64_t, NUM_FAULT_KINDS> perKind_{};
};

} // namespace tmo::fault
