#include "fault/invariant_auditor.hpp"

#include <array>
#include <cstdint>
#include <sstream>

#include "mem/lru.hpp"
#include "mem/memory_manager.hpp"
#include "mem/page.hpp"
#include "tier/tier_chain.hpp"

namespace tmo::fault
{

namespace
{

/** Counters re-derived from one cgroup's pages. */
struct Derived {
    std::uint64_t live = 0;
    std::uint64_t resident = 0;
    std::array<std::uint64_t, mem::NUM_LRU_LISTS> perLru{};
    std::uint64_t zswapBytes = 0;
    std::uint64_t swapBytes = 0;
    std::uint64_t lost = 0;
    std::uint64_t onFilesystem = 0;
    std::uint64_t stored = 0;
    std::uint64_t tierListed = 0;
};

const char *
lruName(std::size_t kind)
{
    static const char *NAMES[] = {"inactive_anon", "active_anon",
                                  "inactive_file", "active_file"};
    return NAMES[kind];
}

void
mismatch(std::vector<std::string> &out, const std::string &where,
         const char *what, std::uint64_t expected, std::uint64_t actual)
{
    std::ostringstream msg;
    msg << where << ": " << what << " counter " << actual
        << " != " << expected << " derived from the page table";
    out.push_back(msg.str());
}

} // namespace

std::vector<std::string>
auditHost(host::Host &machine)
{
    std::vector<std::string> violations;
    const mem::MemoryManager &mm = machine.memory();
    const auto &pages = mm.pages();
    const std::size_t ncg = mm.memcgCount();

    // One pass over the page table re-derives every per-cgroup
    // counter the hot paths maintain incrementally.
    std::vector<Derived> derived(ncg);
    for (const auto &page : pages) {
        if (page.memcg == 0xffff)
            continue; // free slot
        if (page.memcg >= ncg) {
            violations.push_back("page table: live page owned by "
                                 "unknown memcg " +
                                 std::to_string(page.memcg));
            continue;
        }
        Derived &d = derived[page.memcg];
        ++d.live;
        if (page.flags & mem::PG_TIER_LISTED)
            ++d.tierListed;
        switch (page.where) {
          case mem::Where::RAM:
            ++d.resident;
            if (page.lru == mem::LruKind::NONE)
                violations.push_back(
                    "page table: resident page off every LRU list");
            else
                ++d.perLru[static_cast<std::size_t>(page.lru)];
            break;
          case mem::Where::ZSWAP:
            d.zswapBytes += page.storedBytes;
            ++d.stored;
            break;
          case mem::Where::SWAP:
            d.swapBytes += page.storedBytes;
            ++d.stored;
            break;
          case mem::Where::FS:
            ++d.onFilesystem;
            break;
          case mem::Where::LOST:
            ++d.lost;
            break;
        }
    }

    std::uint64_t lruTotal = 0;
    // A page may sit on at most one tier list, across all cgroups.
    std::vector<bool> listed(pages.size(), false);

    for (std::size_t i = 0; i < ncg; ++i) {
        const mem::MemCg &mcg = mm.memcgAt(i);
        const Derived &d = derived[i];
        const std::string name =
            mcg.cg ? mcg.cg->name() : "memcg" + std::to_string(i);

        if (mcg.ages.size() != d.live)
            mismatch(violations, name, "age-list size", d.live,
                     mcg.ages.size());
        for (std::size_t k = 0; k < mem::NUM_LRU_LISTS; ++k) {
            const auto size =
                mcg.lru.list(static_cast<mem::LruKind>(k)).size();
            if (size != d.perLru[k])
                mismatch(violations, name, lruName(k), d.perLru[k],
                         size);
        }
        if (mcg.lru.totalPages() != d.resident)
            mismatch(violations, name, "resident pages", d.resident,
                     mcg.lru.totalPages());
        if (mcg.zswapBytes != d.zswapBytes)
            mismatch(violations, name, "zswap bytes", d.zswapBytes,
                     mcg.zswapBytes);
        if (mcg.swapBytes != d.swapBytes)
            mismatch(violations, name, "swap bytes", d.swapBytes,
                     mcg.swapBytes);
        if (mcg.lostPages != d.lost)
            mismatch(violations, name, "lost pages", d.lost,
                     mcg.lostPages);
        // Conservation: every live page is in exactly one place.
        if (d.resident + d.stored + d.lost + d.onFilesystem != d.live)
            mismatch(violations, name, "page conservation", d.live,
                     d.resident + d.stored + d.lost + d.onFilesystem);
        lruTotal += mcg.lru.totalPages();

        // Tier-list walk: membership, ownership, tier mapping, and
        // the per-tier byte counters.
        const tier::TierChain *chain = mcg.anonChain;
        std::uint64_t walked = 0;
        for (std::size_t t = 0; t < mcg.tierLists.size(); ++t) {
            const mem::LruList &list = mcg.tierLists[t];
            std::uint64_t bytes = 0;
            std::size_t steps = 0;
            for (mem::PageIdx cur = list.head();
                 cur != mem::NO_PAGE && steps <= list.size();
                 ++steps) {
                const mem::Page &page = pages[cur];
                if (listed[cur])
                    violations.push_back(name + ": page on two tier "
                                                "lists (tier " +
                                         std::to_string(t) + ")");
                listed[cur] = true;
                ++walked;
                bytes += page.storedBytes;
                if (!(page.flags & mem::PG_TIER_LISTED))
                    violations.push_back(
                        name + ": tier-listed page without "
                               "PG_TIER_LISTED (tier " +
                        std::to_string(t) + ")");
                if (page.memcg != mcg.index)
                    violations.push_back(
                        name + ": foreign page on tier list " +
                        std::to_string(t));
                if (page.where != mem::Where::ZSWAP &&
                    page.where != mem::Where::SWAP)
                    violations.push_back(
                        name + ": non-offloaded page on tier list " +
                        std::to_string(t));
                const auto &registry = mm.backendRegistry();
                if (!chain || page.store >= registry.size() ||
                    chain->indexOf(registry[page.store]) !=
                        static_cast<int>(t))
                    violations.push_back(
                        name + ": page on tier list " +
                        std::to_string(t) +
                        " stored in a different tier");
                cur = page.next;
            }
            if (steps != list.size())
                mismatch(violations, name, "tier-list length", steps,
                         list.size());
            if (t < mcg.tierBytes.size() && bytes != mcg.tierBytes[t])
                mismatch(violations,
                         name + " tier " + std::to_string(t),
                         "tier bytes", bytes, mcg.tierBytes[t]);
        }
        if (walked != d.tierListed)
            mismatch(violations, name, "PG_TIER_LISTED flags",
                     d.tierListed, walked);
    }

    if (mm.residentPages() != lruTotal)
        mismatch(violations, machine.name(), "resident-page total",
                 lruTotal, mm.residentPages());

    // Every offload backend's occupancy must equal the storedBytes of
    // the pages referencing it. The filesystem is exempt: file
    // contents occupy it whether or not they are cached in DRAM.
    const auto &registry = mm.backendRegistry();
    std::vector<std::uint64_t> perBackend(registry.size(), 0);
    for (const auto &page : pages) {
        if (page.memcg == 0xffff)
            continue;
        if ((page.where == mem::Where::ZSWAP ||
             page.where == mem::Where::SWAP) &&
            page.store < perBackend.size())
            perBackend[page.store] += page.storedBytes;
    }
    for (std::size_t b = 0; b < registry.size(); ++b) {
        backend::OffloadBackend *be = registry[b];
        if (!be || be == &machine.filesystem())
            continue;
        if (be->usedBytes() != perBackend[b])
            mismatch(violations, machine.name() + " " + be->name(),
                     "backend usedBytes", perBackend[b],
                     be->usedBytes());
    }

    return violations;
}

} // namespace tmo::fault
