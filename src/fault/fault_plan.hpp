/**
 * @file
 * Typed, time-scheduled fault plans.
 *
 * TMO's production story (§4) is about surviving bad days: swap-space
 * exhaustion, SSD wear-out and latency spikes, IO-pressure incidents,
 * controller restarts, capacity loss. A FaultPlan is the deterministic
 * script of such a day — a sorted list of typed events, each with an
 * injection time and one numeric argument — parsed from a simple
 * line-based spec (`t=<sec> kind=<event> arg=<v>`) or sampled from a
 * seeded RNG for chaos runs. The plan itself is inert data; a
 * fault::FaultInjector delivers it into one host's event queue.
 */

#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace tmo::fault
{

/** The injectable fault vocabulary (each maps to a §4 mechanism). */
enum class FaultKind {
    /** Multiply SSD device latency by arg (firmware stall / internal
     *  GC; exercises the IO-pressure guard, §3.3). */
    SSD_LATENCY,
    /** Consume arg (fraction) of the SSD's rated endurance at once
     *  (wear-out; exercises write regulation, §4.5 / Fig. 14). */
    SSD_WEAR,
    /** Fail arg (fraction, [0,1]) of SSD writes with IO errors. */
    SSD_WRITE_ERROR,
    /** Take the swap device offline (arg ignored). */
    SSD_OFFLINE,
    /** Bring the swap device back and clear latency/write-error
     *  impairments (arg ignored). */
    SSD_ONLINE,
    /** Shrink the zswap pool cap to arg MiB (0 lifts the cap). */
    ZSWAP_CAP,
    /** Add arg microseconds of allocator-compaction stall to every
     *  zswap store/load (0 clears). */
    ZSWAP_STALL,
    /** Shrink the swap partition to arg (fraction) of its current
     *  size — slots in use survive, so arg below utilization means
     *  exhaustion (§4 swap-space exhaustion handling). */
    SWAP_EXHAUST,
    /** Stall the host controller for arg seconds (stop, then
     *  resume). */
    CONTROLLER_STALL,
    /** Crash the host controller; it restarts after arg seconds. */
    CONTROLLER_CRASH,
    /** Remove arg MiB of host DRAM (ballooning / bank offlining);
     *  kswapd recovers the deficit. */
    RAM_SHRINK,
    /** Take tier arg (index) of every tier chain on the host offline:
     *  placement and fall-through skip it, its status reads FAILED
     *  into the chain aggregate, pages already stored there stay. */
    TIER_OFFLINE,
    /** Bring tier arg (index) of every tier chain back online. */
    TIER_ONLINE,
    /** Crash the whole host: the shard throws out of its event loop
     *  and is quarantined by the fleet (arg ignored). With a
     *  RestartPolicy the fleet rebuilds the host from its recipe at a
     *  later epoch boundary; without one the host stays frozen. */
    HOST_CRASH,
};

/** Number of fault kinds (for counters indexed by kind). */
inline constexpr std::size_t NUM_FAULT_KINDS = 14;

/** Spec name of a kind ("ssd-latency", "swap-exhaust", ...). */
const char *faultKindName(FaultKind kind);

/** Parse a spec name; nullopt when unknown. */
std::optional<FaultKind> faultKindFromName(const std::string &name);

/** One scheduled fault. */
struct FaultEvent {
    /** Absolute injection time. */
    sim::SimTime at = 0;
    FaultKind kind = FaultKind::SSD_LATENCY;
    /** Kind-specific argument (see FaultKind docs). */
    double arg = 0.0;

    bool operator==(const FaultEvent &) const = default;
};

/** A deterministic schedule of faults for one host. */
struct FaultPlan {
    std::vector<FaultEvent> events;

    bool empty() const { return events.empty(); }
    std::size_t size() const { return events.size(); }

    /**
     * Parse the line-based spec from a stream. Each non-empty,
     * non-comment (#) line is `t=<sec> kind=<event> [arg=<v>]`, in any
     * token order. Events are sorted by time (stable).
     *
     * @throws std::invalid_argument naming the offending line and
     *         token for any malformed input.
     */
    static FaultPlan parse(std::istream &in);

    /** parse() over an in-memory spec. */
    static FaultPlan parseString(const std::string &text);

    /**
     * parse() over a file.
     * @throws std::invalid_argument when the file cannot be read.
     */
    static FaultPlan fromFile(const std::string &path);

    /**
     * Sample a random plan for a run of @p duration: a handful of
     * events with kinds and arguments drawn from ranges that degrade
     * but never instantly kill a host. Deterministic per seed.
     */
    static FaultPlan random(std::uint64_t seed, sim::SimTime duration);

    /** Render back to the line-based spec (round-trips via parse). */
    std::string toString() const;
};

} // namespace tmo::fault
