#include "fault/fault_plan.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "sim/rng.hpp"

namespace tmo::fault
{

namespace
{

struct KindName {
    FaultKind kind;
    const char *name;
};

constexpr KindName KIND_NAMES[] = {
    {FaultKind::SSD_LATENCY, "ssd-latency"},
    {FaultKind::SSD_WEAR, "ssd-wear"},
    {FaultKind::SSD_WRITE_ERROR, "ssd-write-error"},
    {FaultKind::SSD_OFFLINE, "ssd-offline"},
    {FaultKind::SSD_ONLINE, "ssd-online"},
    {FaultKind::ZSWAP_CAP, "zswap-cap"},
    {FaultKind::ZSWAP_STALL, "zswap-stall"},
    {FaultKind::SWAP_EXHAUST, "swap-exhaust"},
    {FaultKind::CONTROLLER_STALL, "controller-stall"},
    {FaultKind::CONTROLLER_CRASH, "controller-crash"},
    {FaultKind::RAM_SHRINK, "ram-shrink"},
    {FaultKind::TIER_OFFLINE, "tier-offline"},
    {FaultKind::TIER_ONLINE, "tier-online"},
    {FaultKind::HOST_CRASH, "host-crash"},
};

static_assert(sizeof(KIND_NAMES) / sizeof(KIND_NAMES[0]) ==
              NUM_FAULT_KINDS);

[[noreturn]] void
parseError(std::size_t line, const std::string &what)
{
    throw std::invalid_argument("fault plan line " +
                                std::to_string(line) + ": " + what);
}

double
parseNumber(std::size_t line, const std::string &token,
            const std::string &text)
{
    double value = 0.0;
    std::size_t used = 0;
    // The trailing-junk check must live OUTSIDE this try: parseError
    // throws invalid_argument itself and would be swallowed by the
    // stod catch below.
    try {
        value = std::stod(text, &used);
    } catch (const std::invalid_argument &) {
        parseError(line, "bad number in " + token + "=" + text);
    } catch (const std::out_of_range &) {
        parseError(line, "number out of range in " + token + "=" + text);
    }
    if (used != text.size())
        parseError(line, "trailing junk in " + token + "=" + text);
    return value;
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    for (const auto &entry : KIND_NAMES)
        if (entry.kind == kind)
            return entry.name;
    return "?";
}

std::optional<FaultKind>
faultKindFromName(const std::string &name)
{
    for (const auto &entry : KIND_NAMES)
        if (name == entry.name)
            return entry.kind;
    return std::nullopt;
}

FaultPlan
FaultPlan::parse(std::istream &in)
{
    FaultPlan plan;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        // Strip comments.
        if (const auto hash = line.find('#'); hash != std::string::npos)
            line.erase(hash);

        std::istringstream tokens(line);
        std::string token;
        bool have_time = false, have_kind = false;
        FaultEvent event;
        while (tokens >> token) {
            const auto eq = token.find('=');
            if (eq == std::string::npos)
                parseError(line_no,
                           "expected key=value, got '" + token + "'");
            const std::string key = token.substr(0, eq);
            const std::string value = token.substr(eq + 1);
            if (key == "t") {
                const double sec = parseNumber(line_no, key, value);
                if (sec < 0.0)
                    parseError(line_no, "t must be >= 0");
                event.at = sim::fromSeconds(sec);
                have_time = true;
            } else if (key == "kind") {
                const auto kind = faultKindFromName(value);
                if (!kind)
                    parseError(line_no,
                               "unknown fault kind '" + value + "'");
                event.kind = *kind;
                have_kind = true;
            } else if (key == "arg") {
                event.arg = parseNumber(line_no, key, value);
            } else {
                parseError(line_no, "unknown key '" + key + "'");
            }
        }
        if (!have_time && !have_kind && line.find_first_not_of(" \t\r") ==
                                            std::string::npos)
            continue; // blank / comment-only line
        if (!have_time)
            parseError(line_no, "missing t=<sec>");
        if (!have_kind)
            parseError(line_no, "missing kind=<event>");
        plan.events.push_back(event);
    }
    std::stable_sort(plan.events.begin(), plan.events.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.at < b.at;
                     });
    return plan;
}

FaultPlan
FaultPlan::parseString(const std::string &text)
{
    std::istringstream in(text);
    return parse(in);
}

FaultPlan
FaultPlan::fromFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::invalid_argument("cannot read fault plan file: " +
                                    path);
    return parse(in);
}

FaultPlan
FaultPlan::random(std::uint64_t seed, sim::SimTime duration)
{
    sim::Rng rng(seed ^ 0xfa017a11ull);
    FaultPlan plan;
    const std::size_t count = 3 + rng.uniformInt(5); // 3..7 events
    for (std::size_t i = 0; i < count; ++i) {
        FaultEvent event;
        // Faults land in the middle 80% of the run so degradation and
        // (partial) recovery are both observable.
        event.at = static_cast<sim::SimTime>(
            rng.uniform(0.1, 0.9) * static_cast<double>(duration));
        // Random plans draw from the original 11 kinds only: tier
        // faults are meaningless for hosts without chains, and the
        // fixed draw keeps seeded chaos plans reproducible across
        // vocabulary growth.
        switch (rng.uniformInt(11)) {
          case 0:
            event.kind = FaultKind::SSD_LATENCY;
            event.arg = rng.uniform(2.0, 20.0);
            break;
          case 1:
            event.kind = FaultKind::SSD_WEAR;
            event.arg = rng.uniform(0.3, 1.2);
            break;
          case 2:
            event.kind = FaultKind::SSD_WRITE_ERROR;
            event.arg = rng.uniform(0.05, 0.5);
            break;
          case 3: {
            // Offline episodes come with a scheduled recovery.
            event.kind = FaultKind::SSD_OFFLINE;
            plan.events.push_back(event);
            event.kind = FaultKind::SSD_ONLINE;
            event.at += static_cast<sim::SimTime>(
                rng.uniform(0.05, 0.3) * static_cast<double>(duration));
            break;
          }
          case 4:
            event.kind = FaultKind::SSD_ONLINE;
            break;
          case 5:
            event.kind = FaultKind::ZSWAP_CAP;
            event.arg = rng.uniform(16.0, 128.0); // MiB
            break;
          case 6:
            event.kind = FaultKind::ZSWAP_STALL;
            event.arg = rng.uniform(100.0, 5000.0); // us
            break;
          case 7:
            event.kind = FaultKind::SWAP_EXHAUST;
            event.arg = rng.uniform(0.0, 0.5);
            break;
          case 8:
            event.kind = FaultKind::CONTROLLER_STALL;
            event.arg = rng.uniform(5.0, 60.0); // seconds
            break;
          case 9:
            event.kind = FaultKind::CONTROLLER_CRASH;
            event.arg = rng.uniform(5.0, 60.0); // seconds
            break;
          default:
            event.kind = FaultKind::RAM_SHRINK;
            event.arg = rng.uniform(32.0, 256.0); // MiB
            break;
        }
        plan.events.push_back(event);
    }
    std::stable_sort(plan.events.begin(), plan.events.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.at < b.at;
                     });
    return plan;
}

std::string
FaultPlan::toString() const
{
    std::ostringstream out;
    for (const auto &event : events) {
        out << "t=" << sim::toSeconds(event.at)
            << " kind=" << faultKindName(event.kind)
            << " arg=" << event.arg << "\n";
    }
    return out.str();
}

} // namespace tmo::fault
