/**
 * @file
 * Chaos invariant auditor.
 *
 * Fault plans mutate hosts in ways ordinary tests never exercise
 * (tiers dying mid-store, controllers crashing between ticks, whole
 * hosts being rebuilt). The auditor re-derives every piece of memory
 * accounting from the page table — the single source of truth — and
 * cross-checks the incremental counters against it after every fleet
 * epoch:
 *
 *  - per-cgroup: live pages == age-list size, resident pages == LRU
 *    sizes (per list), zswap/swap byte counters == per-page
 *    storedBytes sums, lost pages == pages parked in Where::LOST,
 *    and conservation: resident + stored + lost + on-filesystem ==
 *    all live pages;
 *  - tier lists: every listed page carries PG_TIER_LISTED, belongs to
 *    the cgroup, maps to the tier it is listed under, and no page is
 *    on two lists; per-tier byte counters match;
 *  - global: the manager's resident-page counter == the LRU sums, and
 *    every offload backend's usedBytes == the storedBytes its pages
 *    reference (the filesystem is exempt — file contents live there
 *    whether cached or not).
 *
 * The checks are read-only and O(pages); wire into
 * Fleet::enableInvariantAudit for continuous checking, or call
 * directly from tests.
 */

#pragma once

#include <string>
#include <vector>

#include "host/host.hpp"

namespace tmo::fault
{

/**
 * Audit one host's memory accounting against its page table.
 * @return One human-readable string per violated invariant; empty
 *         when every invariant holds.
 */
std::vector<std::string> auditHost(host::Host &machine);

} // namespace tmo::fault
