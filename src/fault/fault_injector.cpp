#include "fault/fault_injector.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "backend/swap_backend.hpp"
#include "backend/zswap.hpp"
#include "obs/trace.hpp"
#include "sim/time.hpp"

namespace tmo::fault
{

namespace
{

constexpr double MIB = 1024.0 * 1024.0;

std::uint64_t
mib(double value)
{
    return static_cast<std::uint64_t>(std::max(0.0, value) * MIB);
}

} // namespace

backend::BackendStatus
hostBackendStatus(host::Host &machine)
{
    auto status = backend::worseStatus(machine.swap().status(),
                                       machine.zswap().status());
    // Chains fold in offline tiers and dedicated (capped) pools the
    // host singletons above do not cover.
    for (const tier::TierChain *chain : machine.chains())
        status = backend::worseStatus(status, chain->status());
    return status;
}

std::uint64_t
hostDegradationEvents(host::Host &machine)
{
    std::uint64_t events = machine.swap().storeErrors() +
                           machine.swap().loadErrors() +
                           machine.zswap().rejectedPages();
    // Dedicated per-chain pools reject independently of the host
    // singleton; each owned pool lives in exactly one chain, so this
    // never double-counts.
    for (tier::TierChain *chain : machine.chains())
        for (std::size_t i = 0; i < chain->size(); ++i)
            if (auto *pool = dynamic_cast<backend::ZswapPool *>(
                    chain->tier(i)))
                if (pool != &machine.zswap())
                    events += pool->rejectedPages();
    return events;
}

FaultInjector::FaultInjector(host::Host &machine, FaultPlan plan)
    : host_(machine), plan_(std::move(plan))
{}

void
FaultInjector::arm()
{
    if (armed_)
        return;
    armed_ = true;
    auto &sim = host_.simulation();
    for (const auto &event : plan_.events) {
        const sim::SimTime at = std::max(event.at, sim.now());
        sim.at(at, [this, event] { apply(event); });
    }
}

void
FaultInjector::apply(const FaultEvent &event)
{
    ++injected_;
    ++perKind_[static_cast<std::size_t>(event.kind)];

    auto &sim = host_.simulation();
    if (auto *ring = host_.trace()) {
        // SSD_ONLINE / TIER_ONLINE are the plan events that undo a
        // fault.
        const auto type = event.kind == FaultKind::SSD_ONLINE ||
                                  event.kind == FaultKind::TIER_ONLINE
                              ? obs::TraceEventType::FAULT_RECOVER
                              : obs::TraceEventType::FAULT_INJECT;
        ring->record(sim.now(), type,
                     static_cast<std::uint8_t>(event.kind), 0,
                     {event.arg});
    }
    switch (event.kind) {
      case FaultKind::SSD_LATENCY:
        host_.ssd().injectLatencyMultiplier(std::max(1.0, event.arg));
        break;
      case FaultKind::SSD_WEAR:
        host_.ssd().injectWearFraction(std::max(0.0, event.arg));
        break;
      case FaultKind::SSD_WRITE_ERROR:
        host_.ssd().setWriteErrorRate(
            std::clamp(event.arg, 0.0, 1.0));
        break;
      case FaultKind::SSD_OFFLINE:
        host_.ssd().setOffline(true);
        break;
      case FaultKind::SSD_ONLINE:
        host_.ssd().setOffline(false);
        host_.ssd().injectLatencyMultiplier(1.0);
        host_.ssd().setWriteErrorRate(0.0);
        break;
      case FaultKind::ZSWAP_CAP:
        host_.zswap().setMaxPoolBytes(mib(event.arg));
        break;
      case FaultKind::ZSWAP_STALL:
        host_.zswap().setStallUs(std::max(0.0, event.arg));
        break;
      case FaultKind::SWAP_EXHAUST: {
        auto &swap = host_.swap();
        const double fraction = std::clamp(event.arg, 0.0, 1.0);
        const auto shrunk = static_cast<std::uint64_t>(
            fraction * static_cast<double>(swap.capacityBytes()));
        swap.setCapacityBytes(std::max<std::uint64_t>(shrunk, 4096));
        break;
      }
      case FaultKind::CONTROLLER_CRASH:
        if (host_.controllerFactory()) {
            // With a rebuild recipe installed the crash destroys the
            // daemon object and the host's watchdog re-creates it
            // from the factory once the outage elapses (self-healing
            // path; the watchdog records CONTROLLER start itself).
            host_.crashController(
                sim::fromSeconds(std::max(0.0, event.arg)));
            break;
        }
        [[fallthrough]];
      case FaultKind::CONTROLLER_STALL: {
        core::Controller *controller = host_.controller();
        if (!controller)
            break;
        controller->stop();
        // A stall (or a factory-less crash) silences the control loop
        // but keeps the object; the restart models systemd bringing
        // the daemon back after `arg` seconds.
        const auto outage =
            sim::fromSeconds(std::max(0.0, event.arg));
        const auto kind = event.kind;
        sim.after(outage, [this, kind] {
            if (auto *c = host_.controller()) {
                if (auto *ring = host_.trace())
                    ring->record(host_.simulation().now(),
                                 obs::TraceEventType::FAULT_RECOVER,
                                 static_cast<std::uint8_t>(kind), 0);
                c->start();
            }
        });
        break;
      }
      case FaultKind::RAM_SHRINK: {
        const std::uint64_t cap = host_.memory().ramCapacity();
        const std::uint64_t loss = mib(event.arg);
        host_.memory().setRamBytes(cap > loss ? cap - loss : 0);
        break;
      }
      case FaultKind::TIER_OFFLINE:
      case FaultKind::TIER_ONLINE: {
        // Applied to every chain on the host: the plan names a tier
        // position, not a specific container's chain. The timestamped
        // overload engages evacuation (offline) and the gradual
        // readmission ramp (online).
        const auto index =
            static_cast<std::size_t>(std::max(0.0, event.arg));
        const bool offline = event.kind == FaultKind::TIER_OFFLINE;
        for (tier::TierChain *chain : host_.chains())
            if (index < chain->size())
                chain->setTierOffline(index, offline, sim.now());
        break;
      }
      case FaultKind::HOST_CRASH:
        // Thrown out of the shard's event loop: the fleet engine
        // catches it, quarantines the shard, and — with a
        // RestartPolicy — rebuilds the host at a later epoch
        // boundary. The FAULT_INJECT trace record above is the last
        // event this incarnation writes.
        throw std::runtime_error("host-crash fault injected");
    }
}

core::StatsRow
FaultInjector::statsRow() const
{
    core::StatsRow rows;
    rows.emplace_back("faults injected", std::to_string(injected_));
    rows.emplace_back("backend status",
                      backend::backendStatusName(
                          hostBackendStatus(host_)));
    rows.emplace_back("degradation events",
                      std::to_string(hostDegradationEvents(host_)));
    return rows;
}

} // namespace tmo::fault
