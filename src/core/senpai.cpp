#include "core/senpai.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "stats/table.hpp"

namespace tmo::core
{

SenpaiConfig
senpaiProductionConfig()
{
    return SenpaiConfig{};
}

SenpaiConfig
senpaiAggressiveConfig()
{
    SenpaiConfig config;
    // Config "B" (§4.4): a much larger step and 10x pressure
    // tolerance. Saves more memory, risks RPS via file-cache refaults.
    config.reclaimRatio = 0.005;
    config.psiThreshold = 0.01;
    config.ioPsiThreshold = 0.05;
    return config;
}

Senpai::Senpai(sim::Simulation &simulation, mem::MemoryManager &mm,
               cgroup::Cgroup &cg, SenpaiConfig config)
    : sim_(simulation), mm_(mm), cg_(&cg), config_(config),
      regulator_(config.writeBudgetBytesPerSec)
{}

Senpai::~Senpai()
{
    stop();
}

void
Senpai::start()
{
    if (running_)
        return;
    running_ = true;
    lastTick_ = sim_.now();
    lastMemSome_ = cg_->psi().totalSome(psi::Resource::MEM, sim_.now());
    lastIoSome_ = cg_->psi().totalSome(psi::Resource::IO, sim_.now());
    event_ = sim_.after(config_.interval, [this] { tick(); });
    if (trace_)
        trace_->record(sim_.now(), obs::TraceEventType::CONTROLLER, 0,
                       static_cast<std::uint16_t>(cg_->id()));
}

void
Senpai::stop()
{
    if (!running_)
        return;
    running_ = false;
    sim_.events().cancel(event_);
    event_ = sim::INVALID_EVENT;
    if (trace_)
        trace_->record(sim_.now(), obs::TraceEventType::CONTROLLER, 1,
                       static_cast<std::uint16_t>(cg_->id()));
}

void
Senpai::registerMetrics(obs::MetricRegistry &registry)
{
    const std::string prefix = "senpai." + cg_->name() + ".";
    registry.addProbe(prefix + "pressure",
                      [this] { return pressure_.last(); });
    registry.addProbe(prefix + "reclaim_bytes",
                      [this] { return reclaimed_.last(); });
    registry.addProbe(prefix + "total_requested", [this] {
        return static_cast<double>(totalRequested_);
    });
    registry.addProbe(prefix + "mem_current", [this] {
        return static_cast<double>(cg_->memCurrent());
    });
}

backend::BackendStatus
Senpai::backendStatus() const
{
    // A TierChain aliases anonBackend, so its aggregate status (worst
    // impairment; FAILED only when every tier is out) flows through
    // the same read the raw-backend path uses.
    const auto &mcg = mm_.memcgOf(*cg_);
    auto status = backend::BackendStatus::HEALTHY;
    if (mcg.anonBackend)
        status = backend::worseStatus(status, mcg.anonBackend->status());
    return status;
}

StatsRow
Senpai::statsRow() const
{
    StatsRow rows = {
        {"senpai[" + cg_->name() + "] requested",
         stats::fmtBytes(static_cast<double>(totalRequested_))},
        {"senpai[" + cg_->name() + "] last pressure",
         stats::fmtPercent(pressure_.last(), 4)},
    };
    if (degradedTicks_ > 0)
        rows.push_back({"senpai[" + cg_->name() + "] degraded ticks",
                        std::to_string(degradedTicks_)});
    return rows;
}

void
Senpai::tick()
{
    const sim::SimTime now = sim_.now();
    const sim::SimTime window = now - lastTick_;
    lastTick_ = now;

    // Pressure reading per the configured source: the interval delta
    // of the PSI totals (microsecond resolution, §3.2.4) or a running
    // average.
    const sim::SimTime mem_some =
        cg_->psi().totalSome(psi::Resource::MEM, now);
    const sim::SimTime io_some =
        cg_->psi().totalSome(psi::Resource::IO, now);
    double mem_pressure = 0.0, io_pressure = 0.0;
    switch (config_.source) {
      case PressureSource::INTERVAL:
        if (window) {
            mem_pressure =
                static_cast<double>(mem_some - lastMemSome_) /
                static_cast<double>(window);
            io_pressure =
                static_cast<double>(io_some - lastIoSome_) /
                static_cast<double>(window);
            lastMemSome_ = mem_some;
            lastIoSome_ = io_some;
        }
        // A zero-length window (two ticks at the same sim time, e.g.
        // a stalled controller resumed by a fault plan) must keep the
        // old baseline: advancing it here would silently drop any
        // stall accrued since the last real reading from the next
        // pressure computation.
        break;
      case PressureSource::AVG10:
        mem_pressure = cg_->psi().some(psi::Resource::MEM).avg10;
        io_pressure = cg_->psi().some(psi::Resource::IO).avg10;
        lastMemSome_ = mem_some;
        lastIoSome_ = io_some;
        break;
      case PressureSource::AVG60:
        mem_pressure = cg_->psi().some(psi::Resource::MEM).avg60;
        io_pressure = cg_->psi().some(psi::Resource::IO).avg60;
        lastMemSome_ = mem_some;
        lastIoSome_ = io_some;
        break;
    }

    pressure_.record(now, mem_pressure);

    const auto current = static_cast<double>(cg_->memCurrent());

    // reclaim_mem = current * ratio * max(0, 1 - PSI / threshold)
    double reclaim =
        current * config_.reclaimRatio *
        std::max(0.0, 1.0 - mem_pressure / config_.psiThreshold);
    const double base_step = reclaim;

    // Memory PSI alone can miss workloads hurt indirectly through the
    // storage device (§3.3): back off under IO pressure.
    const bool io_guarded = io_pressure > config_.ioPsiThreshold;
    if (io_guarded)
        reclaim = 0.0;
    const double after_io_guard = reclaim;

    // SSD endurance regulation (§4.5). The budget is re-read every
    // tick so regulation can be deployed to a running controller.
    regulator_.setBudget(config_.writeBudgetBytesPerSec);
    if (regulator_.enabled()) {
        const double written_total =
            mm_.memcgOf(*cg_).swapoutBytes.total();
        reclaim = regulator_.modulate(
            reclaim, written_total - lastSwapoutTotal_, window);
        lastSwapoutTotal_ = written_total;
    } else {
        lastSwapoutTotal_ = mm_.memcgOf(*cg_).swapoutBytes.total();
    }
    const double after_write_reg = reclaim;

    // Swap exhaustion: past the high watermark anon can no longer be
    // offloaded; keep probing file cache only by halving the step.
    auto &mcg = mm_.memcgOf(*cg_);
    const bool swap_high =
        mcg.anonBackend &&
        mcg.anonBackend->utilization() > config_.swapHighWatermark;
    if (swap_high)
        reclaim *= 0.5;
    const double after_watermark = reclaim;

    // Graceful degradation (§4): when the backend reports itself
    // DEGRADED or FAILED, back off the probe. A FAILED backend also
    // switches the kernel-side reclaimer to file-only (see
    // mem/reclaim.cpp), so the halved step keeps probing the file
    // cache rather than spinning on rejected swap-outs.
    const bool degraded =
        backendStatus() != backend::BackendStatus::HEALTHY;
    if (degraded) {
        reclaim *= 0.5;
        ++degradedTicks_;
    }
    const double after_degrade = reclaim;

    // Step cap: at most maxProbeRatio of the workload per interval.
    reclaim = std::min(reclaim, current * config_.maxProbeRatio);

    const auto bytes = static_cast<std::uint64_t>(reclaim);
    reclaimed_.record(now, static_cast<double>(bytes));

    if (trace_) {
        const std::uint8_t guards =
            static_cast<std::uint8_t>((io_guarded ? 1u : 0u) |
                                      (swap_high ? 2u : 0u) |
                                      (degraded ? 4u : 0u));
        trace_->record(now, obs::TraceEventType::SENPAI_TICK, guards,
                       static_cast<std::uint16_t>(cg_->id()),
                       {mem_pressure, io_pressure, base_step,
                        after_io_guard, after_write_reg,
                        after_watermark, after_degrade,
                        static_cast<double>(bytes)});
    }

    if (bytes >= mm_.pageBytes()) {
        totalRequested_ += bytes;
        cg_->memoryReclaim(bytes, now);
    }

    if (running_)
        event_ = sim_.after(config_.interval, [this] { tick(); });
}

} // namespace tmo::core
