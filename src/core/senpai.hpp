/**
 * @file
 * Senpai: the userspace proactive-reclaim controller (§3.3).
 *
 * Senpai continuously engages the kernel's reclaim algorithm, using
 * PSI as feedback on workload health. Every interval it computes, per
 * controlled cgroup:
 *
 *   reclaim_mem = current_mem * reclaim_ratio
 *                 * max(0, 1 - PSI_some / PSI_threshold)
 *
 * and writes the result to the cgroup's stateless memory.reclaim file.
 * As observed pressure approaches the threshold, the step shrinks to
 * zero, settling at a mild steady-state pressure where the workload
 * holds just the memory it needs. Production configuration:
 * reclaim_ratio = 0.0005, PSI_threshold = 0.1%, interval = 6 s,
 * step cap = 1% of the workload per interval.
 *
 * Additional guards (§3.3, §4.5): IO pressure backoff (memory PSI
 * alone misses indirect slowdowns through the storage device), SSD
 * write-endurance regulation, and swap-space exhaustion handling.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cgroup/cgroup.hpp"
#include "core/controller.hpp"
#include "core/write_regulator.hpp"
#include "mem/memory_manager.hpp"
#include "sim/simulation.hpp"
#include "stats/timeseries.hpp"

namespace tmo::core
{

/** Where Senpai reads pressure from. */
enum class PressureSource {
    /** Delta of the PSI total over the last interval (production
     *  behaviour; microsecond resolution, §3.2.4). */
    INTERVAL,
    /** The 10 s running average. */
    AVG10,
    /** The 60 s running average. Preferred at small simulation scales
     *  where an interval holds only a handful of stall events and the
     *  windowed reading is too noisy to control on. */
    AVG60,
};

/** Senpai tuning knobs. */
struct SenpaiConfig {
    /** Reclaim period. Six seconds in production: long enough to
     *  observe the delayed impact (refaults) of the last step. */
    sim::SimTime interval = 6 * sim::SEC;
    /** Target some-memory pressure (fraction of wall time). */
    double psiThreshold = 0.001; // 0.1%
    /** Base reclaim step as a fraction of current memory. */
    double reclaimRatio = 0.0005;
    /** Hard cap per interval as a fraction of current memory. */
    double maxProbeRatio = 0.01; // 1%
    /** Skip reclaim while some-IO pressure exceeds this fraction. */
    double ioPsiThreshold = 0.005;
    /** SSD swap-out write budget (bytes/s); <= 0 disables (§4.5). */
    double writeBudgetBytesPerSec = 0.0;
    /** Stop offloading anon when the swap partition is this full. */
    double swapHighWatermark = 0.9;
    /** Pressure reading used by the control law. */
    PressureSource source = PressureSource::INTERVAL;
};

/** The production configuration (config "A" of §4.4). */
SenpaiConfig senpaiProductionConfig();

/** An aggressive configuration like config "B" of §4.4: larger step,
 *  higher pressure tolerance — bigger savings, RPS risk. */
SenpaiConfig senpaiAggressiveConfig();

/**
 * One Senpai instance controlling one cgroup.
 *
 * Userspace semantics: the controller only reads exported kernel
 * interfaces (PSI files, memory.current) and writes memory.reclaim;
 * it never touches kernel internals.
 */
class Senpai final : public Controller
{
  public:
    /**
     * @param simulation Event loop.
     * @param mm Host memory manager (for swap/write telemetry).
     * @param cg The controlled container.
     * @param config Tuning knobs.
     */
    Senpai(sim::Simulation &simulation, mem::MemoryManager &mm,
           cgroup::Cgroup &cg, SenpaiConfig config = {});

    ~Senpai() override;

    /** Begin periodic control. */
    void start() override;

    /** Stop controlling (cgroup state is left as-is). */
    void stop() override;

    bool running() const override { return running_; }

    std::string name() const override { return "senpai"; }

    /** Requested-reclaim and pressure telemetry, one row each. */
    StatsRow statsRow() const override;

    /** Record a SENPAI_TICK event (with every modulation term) per
     *  tick into @p ring; nullptr detaches. */
    void setTrace(obs::TraceRing *ring) override { trace_ = ring; }

    /** Register per-cgroup pressure/reclaim probes. */
    void registerMetrics(obs::MetricRegistry &registry) override;

    const SenpaiConfig &config() const { return config_; }
    void setConfig(const SenpaiConfig &config) { config_ = config; }

    cgroup::Cgroup &cgroup() { return *cg_; }

    // --- telemetry -------------------------------------------------------

    /** Reclaim requested at each tick (bytes). */
    const stats::TimeSeries &reclaimSeries() const { return reclaimed_; }

    /** Observed some-memory pressure at each tick (fraction). */
    const stats::TimeSeries &pressureSeries() const { return pressure_; }

    /** Total bytes requested for reclaim so far. */
    std::uint64_t totalRequested() const { return totalRequested_; }

    /** Ticks spent backing off because the anon backend reported
     *  DEGRADED or FAILED (graceful degradation, §4). */
    std::uint64_t degradedTicks() const { return degradedTicks_; }

    /** The controlled cgroup's worst anon-backend status right now. */
    backend::BackendStatus backendStatus() const;

  private:
    friend struct SenpaiTestPeer;

    void tick();

    sim::Simulation &sim_;
    mem::MemoryManager &mm_;
    cgroup::Cgroup *cg_;
    SenpaiConfig config_;
    WriteRegulator regulator_;

    bool running_ = false;
    obs::TraceRing *trace_ = nullptr;
    sim::EventId event_ = sim::INVALID_EVENT;
    sim::SimTime lastMemSome_ = 0;
    sim::SimTime lastIoSome_ = 0;
    sim::SimTime lastTick_ = 0;
    double lastSwapoutTotal_ = 0.0;
    std::uint64_t totalRequested_ = 0;
    std::uint64_t degradedTicks_ = 0;
    stats::TimeSeries reclaimed_{"senpai_reclaim_bytes"};
    stats::TimeSeries pressure_{"senpai_psi_some_mem"};
};

} // namespace tmo::core
