/**
 * @file
 * SLO-aware reclaim control: Senpai modulated by tail latency.
 *
 * Stock Senpai regulates on pressure alone, and PSI is a trailing,
 * host-centric signal: during a traffic surge the controller keeps
 * probing until stalls show up in PSI averages, by which time p99
 * completion latency may already be past the service's SLO. SloSenpai
 * wraps a stock Senpai instance and adds the signal the paper's load
 * tests actually grade on (§4.2-§4.4): recent p99 request latency
 * from the workload's serving histogram.
 *
 * A three-state machine converts latency headroom into a reclaim
 * scale applied to the inner Senpai's step knobs each interval:
 *
 *   STEADY     p99 well under target      full reclaim step
 *   CAUTION    p99 near target            step scaled down (0.25x)
 *   VIOLATION  p99 over target            reclaim suspended
 *
 * Escalation is immediate; de-escalation needs several consecutive
 * healthy intervals (hysteresis), so a surge that oscillates around
 * the target does not whipsaw the reclaim step. The probe is an
 * injected std::function so core stays below the workload layer.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "core/senpai.hpp"

namespace tmo::core
{

/** SLO control knobs. */
struct SloConfig {
    /** The p99 completion-latency target (µs). */
    double p99TargetUs = 2000.0;
    /** Re-evaluation period; matches Senpai's interval so every
     *  control tick sees a fresh reading. */
    sim::SimTime interval = 6 * sim::SEC;
    /** Enter CAUTION above this fraction of the target. */
    double cautionFraction = 0.85;
    /** An interval only counts as healthy below this fraction. */
    double clearFraction = 0.70;
    /** Healthy intervals required to de-escalate one state. */
    unsigned clearIntervals = 3;
    /** Reclaim-step scale while in CAUTION. */
    double cautionScale = 0.25;
};

/** Latency-headroom states, escalating order. */
enum class SloState { STEADY, CAUTION, VIOLATION };

const char *sloStateName(SloState state);

/**
 * A stock Senpai wrapped in the latency state machine. Registered as
 * controller "senpai-slo"; behaves exactly like its inner Senpai
 * while the probe reports no samples (apps without request serving).
 */
class SloSenpai final : public Controller
{
  public:
    /** Recent p99 latency in µs; negative = no samples (no signal). */
    using LatencyProbe = std::function<double()>;

    SloSenpai(sim::Simulation &simulation, mem::MemoryManager &mm,
              cgroup::Cgroup &cg, SenpaiConfig senpai_config,
              SloConfig slo, LatencyProbe probe);

    ~SloSenpai() override;

    void start() override;
    void stop() override;
    bool running() const override { return running_; }
    std::string name() const override { return "senpai-slo"; }
    StatsRow statsRow() const override;
    void setTrace(obs::TraceRing *ring) override;
    void registerMetrics(obs::MetricRegistry &registry) override;

    // --- telemetry -------------------------------------------------------

    SloState state() const { return state_; }
    /** STEADY/CAUTION -> VIOLATION transitions so far. */
    std::uint64_t escalations() const { return escalations_; }
    /** Intervals spent in VIOLATION. */
    std::uint64_t violationIntervals() const
    {
        return violationIntervals_;
    }
    /** Last probe reading (µs; negative = no signal). */
    double lastP99Us() const { return lastP99Us_; }
    /** Reclaim scale currently applied to the inner Senpai. */
    double reclaimScale() const;

    const SloConfig &sloConfig() const { return slo_; }
    Senpai &inner() { return senpai_; }

  private:
    void tick();
    void applyScale();

    sim::Simulation &sim_;
    Senpai senpai_;
    /** Controlled cgroup's name (labels; statsRow is const). */
    std::string cgName_;
    /** The inner Senpai's unscaled knobs. */
    SenpaiConfig base_;
    SloConfig slo_;
    LatencyProbe probe_;

    bool running_ = false;
    sim::EventId event_ = sim::INVALID_EVENT;
    SloState state_ = SloState::STEADY;
    unsigned healthyStreak_ = 0;
    double lastP99Us_ = -1.0;
    std::uint64_t escalations_ = 0;
    std::uint64_t violationIntervals_ = 0;
};

} // namespace tmo::core
