/**
 * @file
 * Working-set profiling (§3.3, §5.1).
 *
 * "This proactive approach ... simultaneously provides an accurate
 * workingset profile of the application over time. This allows
 * application developers to more precisely provision memory capacity
 * for their workloads." And §5.1: the improved observability of the
 * file-only deployment "helped accurately setting the memory size for
 * application containers."
 *
 * The profiler samples (resident size, pressure) pairs while a
 * controller probes the workload and derives a provisioning
 * recommendation: the smallest resident size observed while pressure
 * stayed within the health threshold, plus a safety margin.
 */

#pragma once

#include <cstdint>

#include "cgroup/cgroup.hpp"
#include "sim/simulation.hpp"
#include "stats/timeseries.hpp"

namespace tmo::mem
{
class MemoryManager;
}

namespace tmo::core
{

/** Provisioning recommendation derived from a profiling run. */
struct WorkingsetEstimate {
    /** Smallest healthy resident size observed. */
    std::uint64_t minHealthyBytes = 0;
    /** Recommended container size (min healthy + safety margin). */
    std::uint64_t recommendedBytes = 0;
    /** Peak resident size observed (the overprovisioned footprint). */
    std::uint64_t peakBytes = 0;
    /** Samples the estimate is based on. */
    std::size_t samples = 0;

    /** Provisioning headroom the profile exposes, in [0, 1]. */
    double
    overprovisionFraction() const
    {
        if (peakBytes == 0)
            return 0.0;
        return 1.0 - static_cast<double>(recommendedBytes) /
                         static_cast<double>(peakBytes);
    }
};

/**
 * Samples a container's resident size against its memory pressure and
 * recommends a capacity. Run it alongside Senpai (or any controller
 * that probes the workload downward).
 */
class WorkingsetProfiler
{
  public:
    /**
     * @param simulation Event loop.
     * @param cg Container to profile.
     * @param pressure_threshold Health bound on the some-memory
     *        pressure within a sample window (fraction of wall time).
     * @param sample_interval Sampling cadence.
     * @param safety_margin Added to the minimum healthy size.
     */
    WorkingsetProfiler(sim::Simulation &simulation, cgroup::Cgroup &cg,
                       double pressure_threshold = 0.001,
                       sim::SimTime sample_interval = 30 * sim::SEC,
                       double safety_margin = 0.10);

    WorkingsetProfiler(const WorkingsetProfiler &) = delete;
    WorkingsetProfiler &operator=(const WorkingsetProfiler &) = delete;

    /** Begin sampling. */
    void start();

    /** Stop sampling. */
    void stop();

    /**
     * Also sample the cgroup's idle-age breakdown (Fig. 2 coldness)
     * every interval from @p mm. The breakdown is served from the
     * memory manager's incremental per-cgroup age accounting, so
     * polling it at profiler cadence is O(warm pages), not a page-
     * table sweep. nullptr detaches.
     */
    void attachMemory(mem::MemoryManager *mm) { mm_ = mm; }

    /** Current estimate (recomputed on demand). */
    WorkingsetEstimate estimate() const;

    /** Resident-size series (for plotting profiles over time). */
    const stats::TimeSeries &residentSeries() const { return resident_; }

    /** Per-window pressure series aligned with residentSeries(). */
    const stats::TimeSeries &pressureSeries() const { return pressure_; }

    /**
     * Fraction of the container's pages untouched for > 5 min, one
     * sample per interval (empty unless attachMemory() was called).
     */
    const stats::TimeSeries &coldSeries() const { return cold_; }

  private:
    void sample();

    sim::Simulation &sim_;
    cgroup::Cgroup *cg_;
    mem::MemoryManager *mm_ = nullptr;
    double threshold_;
    sim::SimTime interval_;
    double margin_;

    bool running_ = false;
    sim::EventId event_ = sim::INVALID_EVENT;
    sim::SimTime lastSome_ = 0;
    sim::SimTime lastSample_ = 0;
    stats::TimeSeries resident_{"resident_bytes"};
    stats::TimeSeries pressure_{"window_pressure"};
    stats::TimeSeries cold_{"cold_fraction"};
};

} // namespace tmo::core
