/**
 * @file
 * TMO daemon: fleet-style orchestration of Senpai across containers.
 *
 * TMO offloads memory holistically: application containers AND the
 * sidecar containers providing datacenter/microservice functions
 * (§2.3). Containers carry priorities; the daemon derives a per-
 * container Senpai configuration from a base config — relaxed for
 * low-priority tax containers (more savings), milder for high-priority
 * latency-sensitive services.
 */

#pragma once

#include <memory>
#include <vector>

#include "cgroup/cgroup.hpp"
#include "core/controller.hpp"
#include "core/oomd_lite.hpp"
#include "core/senpai.hpp"
#include "mem/memory_manager.hpp"
#include "sim/simulation.hpp"

namespace tmo::core
{

/** Manages one Senpai instance per controlled container. */
class TmoDaemon final : public Controller
{
  public:
    /**
     * @param simulation Event loop.
     * @param mm Host memory manager.
     * @param base Base Senpai configuration (priority-scaled per
     *        container).
     */
    TmoDaemon(sim::Simulation &simulation, mem::MemoryManager &mm,
              SenpaiConfig base = senpaiProductionConfig());

    /**
     * Put a container under management. The effective config scales
     * with the container's priority:
     *  - LOW (tax/batch): 2x pressure tolerance, 4x step;
     *  - NORMAL: base config;
     *  - HIGH: half threshold, half step.
     */
    Senpai &manage(cgroup::Cgroup &cg);

    /** Start every managed Senpai. */
    void startAll();

    /** Stop every managed Senpai. */
    void stopAll();

    // --- Controller interface --------------------------------------------

    void start() override { startAll(); }
    void stop() override { stopAll(); }

    /** True while any managed Senpai is running. */
    bool running() const override;

    std::string name() const override { return "tmo"; }

    /** Managed-container count plus aggregate requested reclaim. */
    StatsRow statsRow() const override;

    /** Forward tracing to every managed Senpai (present and future)
     *  and the oomd escalation path; CONTROLLER events record oomd
     *  arming (code 2) and disarming (code 3). */
    void setTrace(obs::TraceRing *ring) override;

    /** Register probes for every managed Senpai plus escalations. */
    void registerMetrics(obs::MetricRegistry &registry) override;

    const std::vector<std::unique_ptr<Senpai>> &senpais() const
    {
        return senpais_;
    }

    /** Derive the priority-scaled config for a container. */
    SenpaiConfig configFor(const cgroup::Cgroup &cg) const;

    /** Worst backend status across managed containers. */
    backend::BackendStatus worstBackendStatus() const;

    /** Emergency reclaims performed by the oomd escalation path. */
    std::uint64_t escalations() const
    {
        return oomd_ ? oomd_->kills() : 0;
    }

  private:
    /**
     * Periodic health check: while any managed container's backend is
     * degraded or failed, an OomdLite watcher is armed over the
     * managed containers — if pressure then persists at functional-OOM
     * levels, it emergency-shrinks the container (§3.2.4 escalation).
     * Inert in fault-free runs.
     */
    void healthTick();

    sim::Simulation &sim_;
    mem::MemoryManager &mm_;
    SenpaiConfig base_;
    std::vector<std::unique_ptr<Senpai>> senpais_;
    std::unique_ptr<OomdLite> oomd_;
    obs::TraceRing *trace_ = nullptr;
    bool oomdArmed_ = false;
    bool healthRunning_ = false;
    sim::EventId healthEvent_ = sim::INVALID_EVENT;
};

} // namespace tmo::core
