#include "core/workingset_profiler.hpp"

#include <algorithm>

#include "mem/memory_manager.hpp"
#include "psi/psi.hpp"

namespace tmo::core
{

WorkingsetProfiler::WorkingsetProfiler(sim::Simulation &simulation,
                                       cgroup::Cgroup &cg,
                                       double pressure_threshold,
                                       sim::SimTime sample_interval,
                                       double safety_margin)
    : sim_(simulation), cg_(&cg), threshold_(pressure_threshold),
      interval_(sample_interval), margin_(safety_margin)
{}

void
WorkingsetProfiler::start()
{
    if (running_)
        return;
    running_ = true;
    lastSample_ = sim_.now();
    lastSome_ = cg_->psi().totalSome(psi::Resource::MEM, sim_.now());
    event_ = sim_.after(interval_, [this] { sample(); });
}

void
WorkingsetProfiler::stop()
{
    if (!running_)
        return;
    running_ = false;
    sim_.events().cancel(event_);
    event_ = sim::INVALID_EVENT;
}

void
WorkingsetProfiler::sample()
{
    const auto now = sim_.now();
    const auto some = cg_->psi().totalSome(psi::Resource::MEM, now);
    const auto window = now - lastSample_;
    const double pressure =
        window ? static_cast<double>(some - lastSome_) /
                     static_cast<double>(window)
               : 0.0;
    lastSome_ = some;
    lastSample_ = now;

    resident_.record(now, static_cast<double>(cg_->memCurrent()));
    pressure_.record(now, pressure);
    if (mm_)
        cold_.record(now, mm_->idleBreakdown(*cg_, now).cold);

    if (running_)
        event_ = sim_.after(interval_, [this] { sample(); });
}

WorkingsetEstimate
WorkingsetProfiler::estimate() const
{
    WorkingsetEstimate estimate;
    estimate.samples = resident_.size();
    double min_healthy = 0.0;
    for (std::size_t i = 0; i < resident_.size(); ++i) {
        const double bytes = resident_.samples()[i].value;
        estimate.peakBytes = std::max(
            estimate.peakBytes, static_cast<std::uint64_t>(bytes));
        if (pressure_.samples()[i].value <= threshold_) {
            if (min_healthy == 0.0 || bytes < min_healthy)
                min_healthy = bytes;
        }
    }
    estimate.minHealthyBytes = static_cast<std::uint64_t>(min_healthy);
    estimate.recommendedBytes = static_cast<std::uint64_t>(
        min_healthy * (1.0 + margin_));
    return estimate;
}

} // namespace tmo::core
