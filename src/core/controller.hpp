/**
 * @file
 * The common userspace-controller interface.
 *
 * TMO's control plane is pluggable: Senpai, the per-container TMO
 * daemon, and the g-swap baseline are all periodic userspace policies
 * that start, stop, and expose telemetry. Controller is the small
 * polymorphic surface they share, so hosts, the fleet engine, and
 * tools/tmo_sim can hold and dispatch "the controller" without
 * special-casing each backend by name.
 */

#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace tmo::obs
{
class TraceRing;
class MetricRegistry;
} // namespace tmo::obs

namespace tmo::core
{

/** Label/value telemetry pairs for summary tables. */
using StatsRow = std::vector<std::pair<std::string, std::string>>;

/** A userspace memory-offloading policy controlling one host's
 *  containers through exported kernel interfaces only. */
class Controller
{
  public:
    Controller() = default;
    virtual ~Controller() = default;

    Controller(const Controller &) = delete;
    Controller &operator=(const Controller &) = delete;

    /** Begin periodic control. Idempotent. */
    virtual void start() = 0;

    /** Stop controlling (cgroup state is left as-is). Idempotent. */
    virtual void stop() = 0;

    /** Whether periodic control is active. */
    virtual bool running() const = 0;

    /** Short policy name ("senpai", "tmo", "gswap", ...). */
    virtual std::string name() const = 0;

    /** Telemetry for summary output; may be empty. */
    virtual StatsRow statsRow() const { return {}; }

    /** Attach a trace ring (nullptr detaches). Controllers that emit
     *  trace events override this; the default ignores tracing. */
    virtual void setTrace(obs::TraceRing * /* ring */) {}

    /** Register this controller's metrics (counters/gauges/probes)
     *  with the host registry. Default: nothing to register. */
    virtual void registerMetrics(obs::MetricRegistry & /* registry */) {}
};

/**
 * A controller made of controllers: one policy instance per container
 * presented as a single host-level Controller (how "senpai" and
 * "gswap" scale past one container without daemon machinery).
 */
class CompositeController final : public Controller
{
  public:
    explicit CompositeController(std::string name)
        : name_(std::move(name))
    {}

    /** Take ownership of a part (ignores nullptr). */
    Controller &
    add(std::unique_ptr<Controller> part)
    {
        parts_.push_back(std::move(part));
        return *parts_.back();
    }

    void
    start() override
    {
        for (auto &part : parts_)
            part->start();
    }

    void
    stop() override
    {
        for (auto &part : parts_)
            part->stop();
    }

    bool
    running() const override
    {
        for (const auto &part : parts_)
            if (part->running())
                return true;
        return false;
    }

    std::string name() const override { return name_; }

    void
    setTrace(obs::TraceRing *ring) override
    {
        for (auto &part : parts_)
            part->setTrace(ring);
    }

    void
    registerMetrics(obs::MetricRegistry &registry) override
    {
        for (auto &part : parts_)
            part->registerMetrics(registry);
    }

    StatsRow
    statsRow() const override
    {
        StatsRow rows;
        for (const auto &part : parts_) {
            auto sub = part->statsRow();
            rows.insert(rows.end(),
                        std::make_move_iterator(sub.begin()),
                        std::make_move_iterator(sub.end()));
        }
        return rows;
    }

    std::size_t size() const { return parts_.size(); }
    Controller &part(std::size_t i) { return *parts_[i]; }

  private:
    std::string name_;
    std::vector<std::unique_ptr<Controller>> parts_;
};

} // namespace tmo::core
