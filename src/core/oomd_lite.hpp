/**
 * @file
 * Minimal userspace OOM killer driven by full-memory PSI (§3.2.4).
 *
 * "Long before the kernel's OOM killer triggers, applications can be
 * functionally out of memory"; userspace watchers monitor the `full`
 * metric and apply kill policies. This models the open-sourced oomd's
 * core loop: if a container's full-memory stall within a sliding
 * window exceeds a threshold, invoke its kill action.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cgroup/cgroup.hpp"
#include "sim/simulation.hpp"

namespace tmo::obs
{
class TraceRing;
}

namespace tmo::core
{

/** oomd tuning. */
struct OomdConfig {
    /** full-memory stall fraction that triggers a kill. */
    double fullThreshold = 0.20;
    /** Sliding window length. */
    sim::SimTime window = 10 * sim::SEC;
    /** Poll cadence. */
    sim::SimTime pollInterval = 2 * sim::SEC;
};

/** PSI-driven userspace OOM watcher. */
class OomdLite
{
  public:
    OomdLite(sim::Simulation &simulation, OomdConfig config = {});

    OomdLite(const OomdLite &) = delete;
    OomdLite &operator=(const OomdLite &) = delete;

    /**
     * Watch a container; @p kill_fn runs when the policy trips (at
     * most once per container until re-armed by the caller).
     */
    void watch(cgroup::Cgroup &cg, std::function<void()> kill_fn);

    /** Begin polling. */
    void start();

    /** Stop polling. */
    void stop();

    /** Number of kill actions taken. */
    std::uint64_t kills() const { return kills_; }

    /** Record an OOMD_KILL event per fired watch into @p ring;
     *  nullptr detaches. */
    void setTrace(obs::TraceRing *ring) { trace_ = ring; }

  private:
    struct Watch {
        cgroup::Cgroup *cg;
        std::function<void()> killFn;
        sim::SimTime windowStart = 0;
        sim::SimTime startTotal = 0;
        bool fired = false;
    };

    void poll();

    sim::Simulation &sim_;
    OomdConfig config_;
    std::vector<Watch> watches_;
    bool running_ = false;
    obs::TraceRing *trace_ = nullptr;
    sim::EventId event_ = sim::INVALID_EVENT;
    std::uint64_t kills_ = 0;
};

} // namespace tmo::core
