#include "core/slo_controller.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "stats/table.hpp"

namespace tmo::core
{

const char *
sloStateName(SloState state)
{
    switch (state) {
      case SloState::STEADY:
        return "steady";
      case SloState::CAUTION:
        return "caution";
      case SloState::VIOLATION:
        return "violation";
    }
    return "?";
}

SloSenpai::SloSenpai(sim::Simulation &simulation,
                     mem::MemoryManager &mm, cgroup::Cgroup &cg,
                     SenpaiConfig senpai_config, SloConfig slo,
                     LatencyProbe probe)
    : sim_(simulation), senpai_(simulation, mm, cg, senpai_config),
      cgName_(cg.name()), base_(senpai_config), slo_(slo),
      probe_(std::move(probe))
{
}

SloSenpai::~SloSenpai()
{
    stop();
}

double
SloSenpai::reclaimScale() const
{
    switch (state_) {
      case SloState::VIOLATION:
        return 0.0;
      case SloState::CAUTION:
        return slo_.cautionScale;
      case SloState::STEADY:
        return 1.0;
    }
    return 1.0;
}

void
SloSenpai::applyScale()
{
    const double scale = reclaimScale();
    SenpaiConfig config = base_;
    config.reclaimRatio *= scale;
    config.maxProbeRatio *= scale;
    senpai_.setConfig(config);
}

void
SloSenpai::tick()
{
    lastP99Us_ = probe_ ? probe_() : -1.0;
    if (lastP99Us_ >= 0.0) {
        if (lastP99Us_ > slo_.p99TargetUs) {
            // Escalate immediately: suspending reclaim lets refaults
            // pull the working set back while the surge lasts.
            if (state_ != SloState::VIOLATION)
                ++escalations_;
            state_ = SloState::VIOLATION;
            healthyStreak_ = 0;
        } else if (lastP99Us_ > slo_.cautionFraction * slo_.p99TargetUs) {
            if (state_ == SloState::STEADY)
                state_ = SloState::CAUTION;
            healthyStreak_ = 0;
        } else if (lastP99Us_ <= slo_.clearFraction * slo_.p99TargetUs) {
            // De-escalate one level only after a sustained run of
            // healthy intervals: oscillation around the target must
            // not whipsaw the reclaim step.
            if (++healthyStreak_ >= slo_.clearIntervals &&
                state_ != SloState::STEADY) {
                state_ = state_ == SloState::VIOLATION
                             ? SloState::CAUTION
                             : SloState::STEADY;
                healthyStreak_ = 0;
            }
        } else {
            // Between clear and caution: hold state, reset streak.
            healthyStreak_ = 0;
        }
    } else if (state_ != SloState::STEADY) {
        // No signal (idle app / no serving): latency cannot be
        // violating an SLO nobody is measuring; relax gradually.
        if (++healthyStreak_ >= slo_.clearIntervals) {
            state_ = state_ == SloState::VIOLATION ? SloState::CAUTION
                                                   : SloState::STEADY;
            healthyStreak_ = 0;
        }
    }
    if (state_ == SloState::VIOLATION)
        ++violationIntervals_;
    applyScale();
    if (running_)
        event_ = sim_.after(slo_.interval, [this] { tick(); });
}

void
SloSenpai::start()
{
    if (running_)
        return;
    running_ = true;
    // The SLO tick is scheduled before the inner Senpai's, so at a
    // shared deadline the scaled config is in place before Senpai
    // computes its reclaim step.
    event_ = sim_.after(slo_.interval, [this] { tick(); });
    senpai_.start();
}

void
SloSenpai::stop()
{
    if (!running_)
        return;
    running_ = false;
    sim_.events().cancel(event_);
    event_ = sim::INVALID_EVENT;
    senpai_.stop();
}

void
SloSenpai::setTrace(obs::TraceRing *ring)
{
    senpai_.setTrace(ring);
}

void
SloSenpai::registerMetrics(obs::MetricRegistry &registry)
{
    senpai_.registerMetrics(registry);
    const std::string prefix = "slo." + cgName_ + ".";
    registry.addProbe(prefix + "p99_us", [this] { return lastP99Us_; });
    registry.addProbe(prefix + "state", [this] {
        return static_cast<double>(state_);
    });
    registry.addProbe(prefix + "reclaim_scale",
                   [this] { return reclaimScale(); });
    registry.addProbe(prefix + "escalations", [this] {
        return static_cast<double>(escalations_);
    });
}

StatsRow
SloSenpai::statsRow() const
{
    StatsRow rows = senpai_.statsRow();
    const std::string label = "slo[" + cgName_ + "]";
    rows.push_back({label + " target p99 us",
                    std::to_string(slo_.p99TargetUs)});
    rows.push_back({label + " state", sloStateName(state_)});
    rows.push_back(
        {label + " escalations", std::to_string(escalations_)});
    rows.push_back({label + " violation intervals",
                    std::to_string(violationIntervals_)});
    return rows;
}

} // namespace tmo::core
