#include "core/oomd_lite.hpp"

#include "obs/trace.hpp"

namespace tmo::core
{

OomdLite::OomdLite(sim::Simulation &simulation, OomdConfig config)
    : sim_(simulation), config_(config)
{}

void
OomdLite::watch(cgroup::Cgroup &cg, std::function<void()> kill_fn)
{
    watches_.push_back(Watch{&cg, std::move(kill_fn), sim_.now(),
                             cg.psi().totalFull(psi::Resource::MEM,
                                                sim_.now()),
                             false});
}

void
OomdLite::start()
{
    if (running_)
        return;
    running_ = true;
    event_ = sim_.after(config_.pollInterval, [this] { poll(); });
}

void
OomdLite::stop()
{
    if (!running_)
        return;
    running_ = false;
    sim_.events().cancel(event_);
    event_ = sim::INVALID_EVENT;
}

void
OomdLite::poll()
{
    const sim::SimTime now = sim_.now();
    for (auto &watch : watches_) {
        const sim::SimTime total =
            watch.cg->psi().totalFull(psi::Resource::MEM, now);
        if (now - watch.windowStart >= config_.window) {
            watch.windowStart = now;
            watch.startTotal = total;
            continue;
        }
        const sim::SimTime elapsed = now - watch.windowStart;
        if (elapsed == 0 || watch.fired)
            continue;
        const double fraction =
            static_cast<double>(total - watch.startTotal) /
            static_cast<double>(config_.window);
        if (fraction >= config_.fullThreshold) {
            watch.fired = true;
            ++kills_;
            if (trace_)
                trace_->record(
                    now, obs::TraceEventType::OOMD_KILL, 0,
                    static_cast<std::uint16_t>(watch.cg->id()),
                    {fraction,
                     static_cast<double>(watch.cg->memCurrent())});
            if (watch.killFn)
                watch.killFn();
        }
    }
    if (running_)
        event_ = sim_.after(config_.pollInterval, [this] { poll(); });
}

} // namespace tmo::core
