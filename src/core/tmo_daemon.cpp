#include "core/tmo_daemon.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "stats/table.hpp"

namespace tmo::core
{

TmoDaemon::TmoDaemon(sim::Simulation &simulation,
                     mem::MemoryManager &mm, SenpaiConfig base)
    : sim_(simulation), mm_(mm), base_(base)
{}

SenpaiConfig
TmoDaemon::configFor(const cgroup::Cgroup &cg) const
{
    SenpaiConfig config = base_;
    switch (cg.priority()) {
      case cgroup::Priority::LOW:
        // Tax and batch containers tolerate more pressure (§2.3:
        // "the performance SLA for most of the memory tax is more
        // relaxed"), so probe harder.
        config.psiThreshold *= 2.0;
        config.ioPsiThreshold *= 2.0;
        config.reclaimRatio *= 4.0;
        break;
      case cgroup::Priority::NORMAL:
        break;
      case cgroup::Priority::HIGH:
        config.psiThreshold *= 0.5;
        config.reclaimRatio *= 0.5;
        break;
    }
    return config;
}

Senpai &
TmoDaemon::manage(cgroup::Cgroup &cg)
{
    senpais_.push_back(
        std::make_unique<Senpai>(sim_, mm_, cg, configFor(cg)));
    senpais_.back()->setTrace(trace_);
    return *senpais_.back();
}

void
TmoDaemon::setTrace(obs::TraceRing *ring)
{
    trace_ = ring;
    for (auto &s : senpais_)
        s->setTrace(ring);
    if (oomd_)
        oomd_->setTrace(ring);
}

void
TmoDaemon::registerMetrics(obs::MetricRegistry &registry)
{
    for (auto &s : senpais_)
        s->registerMetrics(registry);
    registry.addProbe("tmo.escalations", [this] {
        return static_cast<double>(escalations());
    });
}

void
TmoDaemon::startAll()
{
    for (auto &s : senpais_)
        s->start();
    if (!healthRunning_) {
        healthRunning_ = true;
        healthEvent_ =
            sim_.after(base_.interval, [this] { healthTick(); });
    }
}

void
TmoDaemon::stopAll()
{
    for (auto &s : senpais_)
        s->stop();
    if (healthRunning_) {
        healthRunning_ = false;
        sim_.events().cancel(healthEvent_);
        healthEvent_ = sim::INVALID_EVENT;
    }
    if (oomd_)
        oomd_->stop();
}

backend::BackendStatus
TmoDaemon::worstBackendStatus() const
{
    auto status = backend::BackendStatus::HEALTHY;
    for (const auto &s : senpais_)
        status = backend::worseStatus(status, s->backendStatus());
    return status;
}

void
TmoDaemon::healthTick()
{
    if (!healthRunning_)
        return;
    if (worstBackendStatus() != backend::BackendStatus::HEALTHY) {
        if (!oomd_) {
            oomd_ = std::make_unique<OomdLite>(sim_);
            oomd_->setTrace(trace_);
            for (auto &s : senpais_) {
                cgroup::Cgroup *cg = &s->cgroup();
                oomd_->watch(*cg, [this, cg] {
                    // Functional OOM under a degraded backend: shed
                    // half the container's memory (the simulator's
                    // stand-in for a workload restart).
                    cg->memoryReclaim(cg->memCurrent() / 2,
                                      sim_.now());
                });
            }
        }
        if (trace_ && !oomdArmed_)
            trace_->record(sim_.now(), obs::TraceEventType::CONTROLLER,
                           2, 0);
        oomdArmed_ = true;
        oomd_->start();
    } else if (oomd_) {
        if (trace_ && oomdArmed_)
            trace_->record(sim_.now(), obs::TraceEventType::CONTROLLER,
                           3, 0);
        oomdArmed_ = false;
        oomd_->stop();
    }
    healthEvent_ = sim_.after(base_.interval, [this] { healthTick(); });
}

bool
TmoDaemon::running() const
{
    for (const auto &s : senpais_)
        if (s->running())
            return true;
    return false;
}

StatsRow
TmoDaemon::statsRow() const
{
    std::uint64_t requested = 0;
    for (const auto &s : senpais_)
        requested += s->totalRequested();
    return {
        {"tmo managed containers", std::to_string(senpais_.size())},
        {"tmo requested reclaim",
         stats::fmtBytes(static_cast<double>(requested))},
    };
}

} // namespace tmo::core
