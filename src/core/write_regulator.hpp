/**
 * @file
 * SSD write-endurance regulation (§4.5).
 *
 * SSDs have limited write endurance, so TMO modulates the swap-out
 * write rate during memory offloading. A fleet-wide analysis
 * identified 1 MB/s as a safe sustained threshold; the regulator
 * accounts actual bytes written against the budget and withholds
 * reclaim while the controller is in write debt, so the long-run
 * write rate converges to the budget exactly (Fig. 14).
 */

#pragma once

#include <algorithm>

#include "sim/time.hpp"

namespace tmo::core
{

/** Token-bucket regulator for offload writes. */
class WriteRegulator
{
  public:
    /**
     * @param budget_bytes_per_sec Sustained write budget; <= 0
     *        disables regulation.
     */
    explicit WriteRegulator(double budget_bytes_per_sec)
        : budget_(budget_bytes_per_sec)
    {}

    /** Whether regulation is active. */
    bool enabled() const { return budget_ > 0.0; }

    double budget() const { return budget_; }

    /** Change the budget (re-deployable at runtime). */
    void setBudget(double bytes_per_sec) { budget_ = bytes_per_sec; }

    /**
     * Account a control interval and decide how much reclaim to allow.
     *
     * @param proposed_bytes Reclaim the controller wants to request.
     * @param bytes_written Offload bytes actually written since the
     *        last call.
     * @param dt Interval covered by @p bytes_written.
     * @return The allowed reclaim amount: the full proposal while
     *         within budget, zero while in write debt.
     */
    double
    modulate(double proposed_bytes, double bytes_written,
             sim::SimTime dt)
    {
        if (!enabled())
            return proposed_bytes;
        debt_ += bytes_written - budget_ * sim::toSeconds(dt);
        // Cap accumulated credit at ~8 s of budget so an idle period
        // cannot bankroll a large write burst (keeps the short-term
        // rate near the budget too, not just the long-run average).
        debt_ = std::max(debt_, -budget_ * 8.0);
        if (debt_ > 0.0)
            return 0.0;
        // Reclaim bytes are an upper bound on the writes they can
        // cause, so bounding the request by the available credit
        // bounds the burst.
        return std::min(proposed_bytes, -debt_);
    }

    /** Outstanding write debt in bytes (<= 0 means credit). */
    double debt() const { return debt_; }

  private:
    double budget_;
    double debt_ = 0.0;
};

} // namespace tmo::core
