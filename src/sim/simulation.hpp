/**
 * @file
 * Top-level simulation driver: clock + event queue.
 */

#pragma once

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace tmo::sim
{

/**
 * Owns the simulated clock and the event queue and advances time by
 * draining events. Components schedule work relative to now().
 */
class Simulation
{
  public:
    Simulation() = default;

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    /** Current simulated time. */
    SimTime now() const { return now_; }

    /** The underlying event queue. */
    EventQueue &events() { return events_; }

    /** Schedule a callback @p delay after now(). */
    EventId
    after(SimTime delay, EventFn fn)
    {
        return events_.schedule(now_ + delay, std::move(fn));
    }

    /** Schedule a callback at an absolute time (>= now()). */
    EventId
    at(SimTime when, EventFn fn)
    {
        return events_.schedule(when, std::move(fn));
    }

    /**
     * Schedule a callback every @p period, starting one period from now,
     * until it returns false.
     */
    void every(SimTime period, std::function<bool()> fn);

    /**
     * Run events until the queue is empty or the next event is past
     * @p deadline. The clock ends at exactly @p deadline.
     */
    void runUntil(SimTime deadline);

    /** Run until the event queue is drained. */
    void runToCompletion();

  private:
    SimTime now_ = 0;
    EventQueue events_;
};

} // namespace tmo::sim
