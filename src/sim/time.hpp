/**
 * @file
 * Simulated time primitives.
 *
 * All simulation time is kept as unsigned 64-bit nanoseconds. Helper
 * constants and conversion functions keep call sites readable
 * (e.g. 6 * sim::SEC, sim::toSeconds(now)).
 */

#pragma once

#include <cstdint>

namespace tmo::sim
{

/** Simulated time in nanoseconds since simulation start. */
using SimTime = std::uint64_t;

/** Signed time delta in nanoseconds. */
using SimDuration = std::int64_t;

/** One microsecond in SimTime units. */
inline constexpr SimTime USEC = 1000ull;
/** One millisecond in SimTime units. */
inline constexpr SimTime MSEC = 1000ull * USEC;
/** One second in SimTime units. */
inline constexpr SimTime SEC = 1000ull * MSEC;
/** One minute in SimTime units. */
inline constexpr SimTime MINUTE = 60ull * SEC;
/** One hour in SimTime units. */
inline constexpr SimTime HOUR = 60ull * MINUTE;
/** One day in SimTime units. */
inline constexpr SimTime DAY = 24ull * HOUR;

/** Convert a SimTime to (fractional) seconds. */
inline constexpr double
toSeconds(SimTime t)
{
    return static_cast<double>(t) / static_cast<double>(SEC);
}

/** Convert a SimTime to (fractional) microseconds. */
inline constexpr double
toUsec(SimTime t)
{
    return static_cast<double>(t) / static_cast<double>(USEC);
}

/** Convert (fractional) seconds to SimTime, saturating at zero. */
inline constexpr SimTime
fromSeconds(double s)
{
    if (s <= 0.0)
        return 0;
    return static_cast<SimTime>(s * static_cast<double>(SEC));
}

/** Convert (fractional) microseconds to SimTime, saturating at zero. */
inline constexpr SimTime
fromUsec(double us)
{
    if (us <= 0.0)
        return 0;
    return static_cast<SimTime>(us * static_cast<double>(USEC));
}

} // namespace tmo::sim
