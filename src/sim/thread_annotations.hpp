/**
 * @file
 * Clang thread-safety annotation macros (no-op on GCC).
 *
 * PR 1 turned on -Wthread-safety for clang builds; this header gives
 * the project one spelling for the attributes so every mutex-holding
 * class can document its locking discipline in a form the compiler
 * (clang + annotated standard library) and tools/tmo_lint.py (check
 * `mutex-annotation`: every std::mutex member needs at least one
 * GUARDED_BY sibling) can both check. The macros expand to nothing
 * under GCC, so the default toolchain is unaffected.
 *
 * Note libstdc++'s std::mutex carries no capability attribute, so a
 * clang + libstdc++ build parses these annotations without enforcing
 * the full analysis; they are still load-bearing as machine-readable
 * documentation that tmo_lint.py audits for coverage.
 */

#pragma once

#if defined(__clang__) && !defined(SWIG)
#define TMO_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define TMO_THREAD_ANNOTATION__(x)
#endif

#ifndef GUARDED_BY
/** Data member readable/writable only while holding capability @p x. */
#define GUARDED_BY(x) TMO_THREAD_ANNOTATION__(guarded_by(x))
#endif

#ifndef PT_GUARDED_BY
/** Pointer member whose *pointee* is protected by capability @p x. */
#define PT_GUARDED_BY(x) TMO_THREAD_ANNOTATION__(pt_guarded_by(x))
#endif

#ifndef REQUIRES
/** Function callable only while holding the listed capabilities. */
#define REQUIRES(...) \
    TMO_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#endif

#ifndef ACQUIRE
/** Function that acquires the listed capabilities and holds them. */
#define ACQUIRE(...) \
    TMO_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#endif

#ifndef RELEASE
/** Function that releases the listed capabilities. */
#define RELEASE(...) \
    TMO_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#endif

#ifndef EXCLUDES
/** Function that must NOT be called with the capabilities held. */
#define EXCLUDES(...) TMO_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
#endif

#ifndef NO_THREAD_SAFETY_ANALYSIS
/** Opt a function out of the analysis (used for protocol-protected
 *  state the static analysis cannot model, with a comment saying
 *  which protocol). */
#define NO_THREAD_SAFETY_ANALYSIS \
    TMO_THREAD_ANNOTATION__(no_thread_safety_analysis)
#endif
