/**
 * @file
 * Worker pool for sharded simulations.
 *
 * The fleet engine gives every host its own sim::Simulation and
 * advances the shards in lockstep epochs. ShardedExecutor is the pool
 * that fans one epoch out across worker threads: parallelFor(n, fn)
 * runs fn(0..n-1) with dynamic (work-stealing-counter) assignment and
 * returns only when every index finished — a barrier.
 *
 * Threading model: a shard is only ever touched by one thread at a
 * time (whichever worker claimed its index), and the barrier provides
 * the happens-before edge between epochs. Simulation code therefore
 * stays single-threaded and lock-free; determinism is preserved
 * because shards share no mutable state and index order never affects
 * shard-local results.
 */

#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/thread_annotations.hpp"

namespace tmo::sim
{

/** Fixed pool of workers running index-parallel rounds. */
class ShardedExecutor
{
  public:
    /**
     * @param jobs Total concurrency including the calling thread;
     *        0 picks the hardware concurrency, 1 runs inline.
     */
    explicit ShardedExecutor(unsigned jobs = 0);

    ~ShardedExecutor();

    ShardedExecutor(const ShardedExecutor &) = delete;
    ShardedExecutor &operator=(const ShardedExecutor &) = delete;

    /** Total concurrency (worker threads + the caller). */
    unsigned jobs() const { return jobs_; }

    /**
     * Run @p fn for every index in [0, n); the caller participates.
     * Blocks until all indices completed (barrier). Not reentrant.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

  private:
    void workerLoop();
    void runIndices();

    /** Immutable after construction; no lock needed. */
    unsigned jobs_ = 1;
    /** Written only by the constructor/destructor (no worker ever
     *  touches the vector itself); no lock needed. */
    std::vector<std::thread> workers_;

    /** Protects every round-state member below. Workers claim indices
     *  and publish round transitions only while holding it; the
     *  doneCv_ barrier gives parallelFor the happens-before edge back
     *  to the caller. */
    std::mutex mutex_;
    std::condition_variable workCv_;
    std::condition_variable doneCv_;
    const std::function<void(std::size_t)> *fn_ GUARDED_BY(mutex_) =
        nullptr;
    std::size_t n_ GUARDED_BY(mutex_) = 0;
    std::size_t next_ GUARDED_BY(mutex_) = 0;
    std::size_t busy_ GUARDED_BY(mutex_) = 0;
    std::uint64_t round_ GUARDED_BY(mutex_) = 0;
    bool stopping_ GUARDED_BY(mutex_) = false;
};

} // namespace tmo::sim
