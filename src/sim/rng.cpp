#include "sim/rng.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace tmo::sim
{

namespace
{

/** splitmix64 step, used only for seed expansion. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t s)
{
    seed(s);
}

void
Rng::seed(std::uint64_t s)
{
    for (auto &word : state_)
        word = splitmix64(s);
    cachedNormal_ = 0.0;
    hasCachedNormal_ = false;
}

std::uint64_t
Rng::next()
{
    // xoshiro256** core step.
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    assert(n > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::exponential(double mean)
{
    // Inverse CDF; uniform() < 1 so the log argument is > 0.
    return -mean * std::log(1.0 - uniform());
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedNormal_ = r * std::sin(theta);
    hasCachedNormal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::lognormalMedianP99(double median, double p99_over_median)
{
    assert(median > 0.0);
    assert(p99_over_median >= 1.0);
    // For X ~ LogNormal(mu, sigma): median = e^mu and
    // p99 = e^(mu + 2.326 * sigma), so sigma follows from the ratio.
    constexpr double z99 = 2.3263478740408408;
    const double sigma = std::log(p99_over_median) / z99;
    const double mu = std::log(median);
    return std::exp(mu + sigma * normal());
}

ZipfSampler::ZipfSampler(std::size_t n, double s)
{
    if (n == 0)
        throw std::invalid_argument("ZipfSampler: n must be > 0");
    cdf_.resize(n);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
        cdf_[i] = sum;
    }
    for (auto &c : cdf_)
        c /= sum;
    cdf_.back() = 1.0;
}

std::size_t
ZipfSampler::sample(Rng &rng) const
{
    const double u = rng.uniform();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end())
        --it;
    return static_cast<std::size_t>(it - cdf_.begin());
}

double
ZipfSampler::pmf(std::size_t rank) const
{
    assert(rank < cdf_.size());
    if (rank == 0)
        return cdf_[0];
    return cdf_[rank] - cdf_[rank - 1];
}

} // namespace tmo::sim
