/**
 * @file
 * Discrete-event queue.
 *
 * The control plane of the simulator (Senpai ticks, PSI averaging,
 * workload ticks, device completions) is scheduled through this queue.
 * Events with equal timestamps fire in insertion order, which keeps
 * runs deterministic.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace tmo::sim
{

/** Callback type invoked when an event fires. */
using EventFn = std::function<void()>;

/** Opaque handle used to cancel a scheduled event. */
using EventId = std::uint64_t;

/** Sentinel EventId meaning "no event". */
inline constexpr EventId INVALID_EVENT = 0;

/**
 * Priority queue of timed callbacks with stable ordering and lazy
 * cancellation.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Schedule a callback at an absolute simulated time.
     *
     * @param when Absolute firing time; must be >= the time of the last
     *        popped event (scheduling in the past is a logic error).
     * @param fn Callback to invoke.
     * @return Handle that can be passed to cancel().
     */
    EventId schedule(SimTime when, EventFn fn);

    /** Cancel a previously scheduled event. Unknown ids are ignored. */
    void cancel(EventId id);

    /** True when no live events remain. */
    bool empty() const { return live_.empty(); }

    /** Number of live (non-cancelled) events. */
    std::size_t size() const { return live_.size(); }

    /** Firing time of the earliest live event; queue must not be empty. */
    SimTime nextTime();

    /**
     * Pop and run the earliest live event.
     *
     * @return The time of the event that ran.
     */
    SimTime runNext();

  private:
    struct Entry {
        SimTime when;
        std::uint64_t seq;
        EventId id;
        EventFn fn;

        bool
        operator>(const Entry &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    /** Drop cancelled entries from the head of the heap. */
    void skipDead();

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    std::unordered_set<EventId> live_;
    std::uint64_t nextSeq_ = 0;
    EventId nextId_ = 1;
};

} // namespace tmo::sim
