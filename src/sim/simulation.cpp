#include "sim/simulation.hpp"

#include <utility>

namespace tmo::sim
{

void
Simulation::every(SimTime period, std::function<bool()> fn)
{
    // Self-rescheduling wrapper; stops when fn returns false.
    after(period, [this, period, fn = std::move(fn)]() mutable {
        if (fn())
            every(period, std::move(fn));
    });
}

void
Simulation::runUntil(SimTime deadline)
{
    // Advance the clock before running each event so callbacks observe
    // their own firing time through now().
    while (!events_.empty() && events_.nextTime() <= deadline) {
        now_ = events_.nextTime();
        events_.runNext();
    }
    now_ = deadline;
}

void
Simulation::runToCompletion()
{
    while (!events_.empty()) {
        now_ = events_.nextTime();
        events_.runNext();
    }
}

} // namespace tmo::sim
