#include "sim/sharded_executor.hpp"

namespace tmo::sim
{

ShardedExecutor::ShardedExecutor(unsigned jobs)
{
    if (jobs == 0) {
        jobs = std::thread::hardware_concurrency();
        if (jobs == 0)
            jobs = 1;
    }
    jobs_ = jobs;
    // The caller is one of the `jobs` lanes; spawn the rest.
    for (unsigned i = 1; i < jobs_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ShardedExecutor::~ShardedExecutor()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workCv_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ShardedExecutor::runIndices()
{
    for (;;) {
        std::size_t index;
        const std::function<void(std::size_t)> *fn = nullptr;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (next_ >= n_)
                return;
            index = next_++;
            // Snapshot fn_ while the lock is held so the guarded
            // member is never dereferenced outside the capability.
            fn = fn_;
        }
        (*fn)(index);
    }
}

void
ShardedExecutor::workerLoop()
{
    std::uint64_t seen_round = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workCv_.wait(lock, [&] {
                return stopping_ || round_ != seen_round;
            });
            if (stopping_)
                return;
            seen_round = round_;
        }
        runIndices();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--busy_ == 0)
                doneCv_.notify_all();
        }
    }
}

void
ShardedExecutor::parallelFor(std::size_t n,
                             const std::function<void(std::size_t)> &fn)
{
    if (workers_.empty() || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        fn_ = &fn;
        n_ = n;
        next_ = 0;
        busy_ = workers_.size();
        ++round_;
    }
    workCv_.notify_all();
    runIndices();
    std::unique_lock<std::mutex> lock(mutex_);
    doneCv_.wait(lock, [&] { return busy_ == 0; });
    fn_ = nullptr;
    n_ = 0;
}

} // namespace tmo::sim
