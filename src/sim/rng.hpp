/**
 * @file
 * Deterministic random number generation for the simulator.
 *
 * Every source of randomness in the simulator flows through an Rng
 * instance that is explicitly seeded, so paired A/B experiment tiers can
 * share identical access streams and every run is reproducible.
 *
 * The core generator is xoshiro256** (public domain, Blackman & Vigna),
 * chosen over std::mt19937_64 for speed and a tiny, copyable state.
 */

#pragma once

#include <cstdint>
#include <vector>

namespace tmo::sim
{

/**
 * Deterministic pseudo-random generator with the distributions the
 * simulator needs (uniform, exponential, normal, lognormal, Zipf).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Re-seed the generator, resetting all state. */
    void seed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Bernoulli trial with success probability p. */
    bool chance(double p);

    /** Exponentially distributed value with the given mean. */
    double exponential(double mean);

    /** Standard normal via Box-Muller (cached pair). */
    double normal();

    /** Normal with given mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * Lognormal parameterized by the median and the p99/median ratio,
     * which is how SSD latency specs are usually quoted.
     *
     * @param median The distribution median (same units as the result).
     * @param p99_over_median Ratio of the 99th percentile to the median;
     *        must be >= 1.
     */
    double lognormalMedianP99(double median, double p99_over_median);

  private:
    std::uint64_t state_[4];
    double cachedNormal_;
    bool hasCachedNormal_;
};

/**
 * Zipf(s) sampler over ranks [0, n) using precomputed cumulative
 * weights and binary search. O(log n) per sample, O(n) setup.
 *
 * Rank 0 is the hottest item. s = 0 degenerates to uniform.
 */
class ZipfSampler
{
  public:
    /**
     * @param n Number of items; must be > 0.
     * @param s Zipf skew exponent (>= 0). Typical workloads: 0.6-1.1.
     */
    ZipfSampler(std::size_t n, double s);

    /** Draw one rank in [0, n). */
    std::size_t sample(Rng &rng) const;

    /** Number of items. */
    std::size_t size() const { return cdf_.size(); }

    /** Probability mass of a single rank. */
    double pmf(std::size_t rank) const;

  private:
    std::vector<double> cdf_;
};

} // namespace tmo::sim
