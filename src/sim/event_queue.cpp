#include "sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace tmo::sim
{

EventId
EventQueue::schedule(SimTime when, EventFn fn)
{
    const EventId id = nextId_++;
    heap_.push(Entry{when, nextSeq_++, id, std::move(fn)});
    live_.insert(id);
    return id;
}

void
EventQueue::cancel(EventId id)
{
    // Lazy deletion: drop from the live set; the heap entry is skipped
    // when it reaches the head. Unknown/already-fired ids are ignored.
    live_.erase(id);
}

void
EventQueue::skipDead()
{
    while (!heap_.empty() && !live_.count(heap_.top().id))
        heap_.pop();
}

SimTime
EventQueue::nextTime()
{
    skipDead();
    if (heap_.empty())
        throw std::logic_error("EventQueue::nextTime on empty queue");
    return heap_.top().when;
}

SimTime
EventQueue::runNext()
{
    skipDead();
    if (heap_.empty())
        throw std::logic_error("EventQueue::runNext on empty queue");
    // Move the entry out before running: the callback may schedule.
    Entry entry = heap_.top();
    heap_.pop();
    live_.erase(entry.id);
    entry.fn();
    return entry.when;
}

} // namespace tmo::sim
