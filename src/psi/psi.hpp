/**
 * @file
 * Pressure Stall Information (PSI).
 *
 * Reimplementation of the kernel mechanism the paper contributes
 * (upstreamed as kernel/sched/psi.c). PSI measures, per container and
 * machine-wide, the share of wall time in which lost work occurs due
 * to a shortage of CPU, memory, or IO:
 *
 *  - "some": at least one task in the domain is stalled on the
 *    resource (added latency to individual tasks);
 *  - "full": all non-idle tasks are stalled simultaneously (completely
 *    unproductive time for the domain).
 *
 * Tasks report state transitions (running / runnable / memstall /
 * iowait) through PsiGroup::taskChange(); the group accrues stall time
 * between transitions, keeps microsecond-resolution totals, and
 * maintains exponential running averages over 10 s / 1 m / 5 m windows,
 * updated every 2 s like the kernel.
 *
 * Differences from the kernel: accounting is per-domain rather than
 * per-CPU (the simulator has no per-CPU runqueues), so the kernel's
 * NR_MEMSTALL_RUNNING refinement (direct reclaim burning CPU counts as
 * productive for "full") is approximated by treating stalled tasks as
 * off-CPU.
 */

#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace tmo::obs
{
class TraceRing;
} // namespace tmo::obs

namespace tmo::psi
{

/** Resources PSI tracks. */
enum class Resource { CPU = 0, MEM = 1, IO = 2 };

/** Number of tracked resources. */
inline constexpr std::size_t NUM_RESOURCES = 3;

/** Human-readable resource name ("cpu", "memory", "io"). */
const char *resourceName(Resource r);

/**
 * Task state bits, combinable. A task waiting for swap-in from disk is
 * MEMSTALL | IOWAIT: it contributes to both memory and IO pressure,
 * exactly as in the kernel.
 */
enum TaskState : unsigned {
    /** Executing on a CPU. */
    TSK_ONCPU = 1u << 0,
    /** Wants a CPU but is waiting for one (CPU stall). */
    TSK_RUNNABLE = 1u << 1,
    /** Stalled on memory: direct reclaim, refault wait, swap-in wait. */
    TSK_MEMSTALL = 1u << 2,
    /** Waiting for block IO completion. */
    TSK_IOWAIT = 1u << 3,
};

/** Aggregated pressure readout for one resource/kind. */
struct Pressure {
    /** Running averages as fractions in [0, 1]. */
    double avg10 = 0.0;
    double avg60 = 0.0;
    double avg300 = 0.0;
    /** Absolute stall time total. */
    sim::SimTime total = 0;
};

/**
 * PSI accounting domain: one per cgroup plus one machine-wide.
 *
 * The owner must (a) route every task state transition in the domain
 * through taskChange() in nondecreasing time order and (b) call
 * updateAverages() periodically (every AVG_PERIOD) so the running
 * averages decay; totals are exact regardless.
 */
class PsiGroup
{
  public:
    /** Averaging cadence used by the kernel (2 s). */
    static constexpr sim::SimTime AVG_PERIOD = 2 * sim::SEC;

    PsiGroup() = default;

    /**
     * Apply a task state transition at time @p now.
     *
     * @param clear State bits one task is leaving.
     * @param set State bits the task is entering.
     * @param now Current simulated time (nondecreasing across calls).
     */
    void taskChange(unsigned clear, unsigned set, sim::SimTime now);

    /**
     * Fold elapsed time into the running averages. Call every
     * AVG_PERIOD; cheap enough to call more often.
     */
    void updateAverages(sim::SimTime now);

    /** "some" pressure readout for a resource. */
    Pressure some(Resource r) const;

    /** "full" pressure readout for a resource. */
    Pressure full(Resource r) const;

    /** Absolute "some" stall total (includes time up to @p now). */
    sim::SimTime totalSome(Resource r, sim::SimTime now) const;

    /** Absolute "full" stall total (includes time up to @p now). */
    sim::SimTime totalFull(Resource r, sim::SimTime now) const;

    /** Current count of tasks with the given state bit. */
    unsigned taskCount(TaskState bit) const;

    /** Time with at least one non-idle task, up to last transition. */
    sim::SimTime nonIdleTime() const { return nonIdleTime_; }

    /**
     * Attach a trace ring (nullptr detaches): every some/full state
     * transition is recorded as a PSI_STATE event with @p domain as
     * the owning cgroup id. Tracing off costs one pointer test per
     * taskChange().
     */
    void
    setTrace(obs::TraceRing *ring, std::uint16_t domain)
    {
        trace_ = ring;
        traceDomain_ = domain;
    }

  private:
    /** Index pair into the accounting arrays. */
    enum Kind { SOME = 0, FULL = 1, NUM_KINDS = 2 };

    /** Whether some/full currently holds for a resource. */
    bool stateActive(Resource r, Kind kind) const;

    /** Accrue time since lastChange_ into the active states. */
    void accrue(sim::SimTime now);

    /** Stall time accumulated per resource and kind. */
    std::array<std::array<sim::SimTime, NUM_KINDS>, NUM_RESOURCES>
        stallTime_{};

    /** Totals already folded into averages. */
    std::array<std::array<sim::SimTime, NUM_KINDS>, NUM_RESOURCES>
        lastFolded_{};

    /** Running averages per resource and kind. */
    std::array<std::array<double, NUM_KINDS>, NUM_RESOURCES> avg10_{};
    std::array<std::array<double, NUM_KINDS>, NUM_RESOURCES> avg60_{};
    std::array<std::array<double, NUM_KINDS>, NUM_RESOURCES> avg300_{};

    /** Task counts per state bit (indexed by bit position). */
    std::array<unsigned, 4> nr_{};

    sim::SimTime lastChange_ = 0;
    sim::SimTime lastAvgUpdate_ = 0;
    sim::SimTime nonIdleTime_ = 0;

    obs::TraceRing *trace_ = nullptr;
    std::uint16_t traceDomain_ = 0;
};

/**
 * Userspace PSI trigger (§3.2.4 use case: oomd-style watchers).
 * Fires a callback when stall time within a sliding window exceeds a
 * threshold. Evaluated by PsiTriggerSet::poll().
 */
struct PsiTrigger {
    Resource resource = Resource::MEM;
    bool fullKind = false;
    /** Stall time threshold within the window. */
    sim::SimTime threshold = 0;
    /** Window length. */
    sim::SimTime window = sim::SEC;
    /** Invoked with the observed stall time when the trigger fires. */
    std::function<void(sim::SimTime stall)> callback;
};

/**
 * A set of triggers attached to one PsiGroup. poll() should be called
 * periodically (e.g. every AVG_PERIOD); each trigger fires at most
 * once per window.
 */
class PsiTriggerSet
{
  public:
    explicit PsiTriggerSet(const PsiGroup &group)
        : group_(group)
    {}

    /** Register a trigger; returns its index. */
    std::size_t add(PsiTrigger trigger);

    /** Evaluate all triggers at time @p now. */
    void poll(sim::SimTime now);

    std::size_t size() const { return entries_.size(); }

  private:
    struct Entry {
        PsiTrigger trigger;
        sim::SimTime windowStart = 0;
        sim::SimTime startTotal = 0;
        bool fired = false;
    };

    const PsiGroup &group_;
    std::vector<Entry> entries_;
};

} // namespace tmo::psi
