#include "psi/psi.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "obs/trace.hpp"

namespace tmo::psi
{

namespace
{

/**
 * Invariant violation in the stall-state accounting. The kernel's PSI
 * would WARN and corrupt silently; here a broken caller must fail
 * loudly in release builds too — an assert() vanishes under NDEBUG
 * and would let pressure numbers drift wrong for the rest of the run.
 */
[[noreturn]] void
invariantViolation(const std::string &what)
{
    throw std::logic_error("psi: " + what);
}

/** Bit position for a TaskState bit (bit must have exactly one set). */
std::size_t
bitIndex(unsigned bit)
{
    switch (bit) {
      case TSK_ONCPU:
        return 0;
      case TSK_RUNNABLE:
        return 1;
      case TSK_MEMSTALL:
        return 2;
      case TSK_IOWAIT:
        return 3;
      default:
        invariantViolation("invalid task state bit " +
                           std::to_string(bit));
    }
}

/** EWMA factor for folding one AVG_PERIOD into a window of length w. */
double
avgAlpha(sim::SimTime window)
{
    const double period = sim::toSeconds(PsiGroup::AVG_PERIOD);
    const double w = sim::toSeconds(window);
    return 1.0 - std::exp(-period / w);
}

const double ALPHA10 = avgAlpha(10 * sim::SEC);
const double ALPHA60 = avgAlpha(60 * sim::SEC);
const double ALPHA300 = avgAlpha(300 * sim::SEC);

} // namespace

const char *
resourceName(Resource r)
{
    switch (r) {
      case Resource::CPU:
        return "cpu";
      case Resource::MEM:
        return "memory";
      case Resource::IO:
        return "io";
    }
    return "?";
}

bool
PsiGroup::stateActive(Resource r, Kind kind) const
{
    const unsigned oncpu = nr_[bitIndex(TSK_ONCPU)];
    const unsigned runnable = nr_[bitIndex(TSK_RUNNABLE)];
    const unsigned memstall = nr_[bitIndex(TSK_MEMSTALL)];
    const unsigned iowait = nr_[bitIndex(TSK_IOWAIT)];

    switch (r) {
      case Resource::CPU:
        // Tasks wait for CPU; "full" means nobody productive at all.
        return kind == SOME ? runnable > 0 : runnable > 0 && oncpu == 0;
      case Resource::MEM:
        return kind == SOME ? memstall > 0 : memstall > 0 && oncpu == 0;
      case Resource::IO:
        return kind == SOME ? iowait > 0 : iowait > 0 && oncpu == 0;
    }
    return false;
}

void
PsiGroup::accrue(sim::SimTime now)
{
    // Aggregation domains shared by several reporters (ancestor
    // cgroups fed by multiple containers' tick replays) can observe
    // slightly out-of-order timestamps within one tick window; clamp
    // rather than let the unsigned delta wrap. The accounting error
    // is bounded by the overlap of the reporters' windows.
    if (now <= lastChange_)
        return;
    const sim::SimTime delta = now - lastChange_;

    bool non_idle = false;
    for (const auto bit : nr_)
        non_idle = non_idle || bit > 0;
    if (non_idle)
        nonIdleTime_ += delta;

    for (std::size_t ri = 0; ri < NUM_RESOURCES; ++ri) {
        const auto r = static_cast<Resource>(ri);
        if (stateActive(r, SOME))
            stallTime_[ri][SOME] += delta;
        if (stateActive(r, FULL))
            stallTime_[ri][FULL] += delta;
    }
    lastChange_ = now;
}

void
PsiGroup::taskChange(unsigned clear, unsigned set, sim::SimTime now)
{
    accrue(now);

    // Snapshot which stall states hold before the transition; only
    // when tracing is on (the common path pays one pointer test).
    std::array<bool, NUM_RESOURCES * NUM_KINDS> before{};
    if (trace_) {
        for (std::size_t ri = 0; ri < NUM_RESOURCES; ++ri) {
            const auto r = static_cast<Resource>(ri);
            before[ri * NUM_KINDS + SOME] = stateActive(r, SOME);
            before[ri * NUM_KINDS + FULL] = stateActive(r, FULL);
        }
    }

    for (unsigned bit = 1; bit <= TSK_IOWAIT; bit <<= 1) {
        if (clear & bit) {
            const std::size_t idx = bitIndex(bit);
            if (nr_[idx] == 0)
                invariantViolation(
                    "clearing task state bit " + std::to_string(bit) +
                    " with zero tasks in that state");
            --nr_[idx];
        }
        if (set & bit)
            ++nr_[bitIndex(bit)];
    }

    if (trace_) {
        for (std::size_t ri = 0; ri < NUM_RESOURCES; ++ri) {
            const auto r = static_cast<Resource>(ri);
            for (std::size_t k = 0; k < NUM_KINDS; ++k) {
                const bool was = before[ri * NUM_KINDS + k];
                const bool is =
                    stateActive(r, static_cast<Kind>(k));
                if (was == is)
                    continue;
                trace_->record(
                    now, obs::TraceEventType::PSI_STATE,
                    static_cast<std::uint8_t>(ri * NUM_KINDS + k),
                    traceDomain_,
                    {is ? 1.0 : 0.0,
                     static_cast<double>(stallTime_[ri][k])});
            }
        }
    }
}

void
PsiGroup::updateAverages(sim::SimTime now)
{
    accrue(now);
    const sim::SimTime elapsed = now - lastAvgUpdate_;
    if (elapsed < AVG_PERIOD)
        return;

    const double span = static_cast<double>(elapsed);
    for (std::size_t ri = 0; ri < NUM_RESOURCES; ++ri) {
        for (std::size_t k = 0; k < NUM_KINDS; ++k) {
            const sim::SimTime delta =
                stallTime_[ri][k] - lastFolded_[ri][k];
            const double pressure = static_cast<double>(delta) / span;
            avg10_[ri][k] += ALPHA10 * (pressure - avg10_[ri][k]);
            avg60_[ri][k] += ALPHA60 * (pressure - avg60_[ri][k]);
            avg300_[ri][k] += ALPHA300 * (pressure - avg300_[ri][k]);
            lastFolded_[ri][k] = stallTime_[ri][k];
        }
    }
    lastAvgUpdate_ = now;
}

Pressure
PsiGroup::some(Resource r) const
{
    const auto ri = static_cast<std::size_t>(r);
    return Pressure{avg10_[ri][SOME], avg60_[ri][SOME], avg300_[ri][SOME],
                    stallTime_[ri][SOME]};
}

Pressure
PsiGroup::full(Resource r) const
{
    const auto ri = static_cast<std::size_t>(r);
    return Pressure{avg10_[ri][FULL], avg60_[ri][FULL], avg300_[ri][FULL],
                    stallTime_[ri][FULL]};
}

sim::SimTime
PsiGroup::totalSome(Resource r, sim::SimTime now) const
{
    const auto ri = static_cast<std::size_t>(r);
    sim::SimTime total = stallTime_[ri][SOME];
    if (now > lastChange_ && stateActive(r, SOME))
        total += now - lastChange_;
    return total;
}

sim::SimTime
PsiGroup::totalFull(Resource r, sim::SimTime now) const
{
    const auto ri = static_cast<std::size_t>(r);
    sim::SimTime total = stallTime_[ri][FULL];
    if (now > lastChange_ && stateActive(r, FULL))
        total += now - lastChange_;
    return total;
}

unsigned
PsiGroup::taskCount(TaskState bit) const
{
    return nr_[bitIndex(bit)];
}

std::size_t
PsiTriggerSet::add(PsiTrigger trigger)
{
    Entry entry;
    entry.trigger = std::move(trigger);
    entries_.push_back(std::move(entry));
    return entries_.size() - 1;
}

void
PsiTriggerSet::poll(sim::SimTime now)
{
    for (auto &entry : entries_) {
        const auto &t = entry.trigger;
        const sim::SimTime total =
            t.fullKind ? group_.totalFull(t.resource, now)
                       : group_.totalSome(t.resource, now);
        if (now - entry.windowStart >= t.window) {
            // Slide to a new window.
            entry.windowStart = now;
            entry.startTotal = total;
            entry.fired = false;
            continue;
        }
        const sim::SimTime stall = total - entry.startTotal;
        if (!entry.fired && stall >= t.threshold) {
            entry.fired = true;
            if (t.callback)
                t.callback(stall);
        }
    }
}

} // namespace tmo::psi
