#include "costmodel/cost_model.hpp"

namespace tmo::costmodel
{

std::vector<GenerationCost>
costTrend(CostModelParams params)
{
    // DRAM cost share per generation (Gen-1 near end-of-life through
    // the upcoming Gen-6 at 33%), and the matching power trajectory
    // reaching 38%.
    const double dram_pct[6] = {15.0, 18.0, 22.0, 26.0, 30.0, 33.0};
    const double power_pct[6] = {20.0, 24.0, 28.0, 32.0, 35.0, 38.0};
    // The provisioned SSD's share of server cost stays under 3%.
    const double ssd_total_pct[6] = {2.9, 2.8, 2.8, 2.7, 2.6, 2.5};

    std::vector<GenerationCost> trend;
    for (int g = 0; g < 6; ++g) {
        GenerationCost cost;
        cost.generation = "Gen " + std::to_string(g + 1);
        cost.memoryPct = dram_pct[g];
        // Iso-capacity via compression: 1/ratio of the DRAM cost.
        cost.compressedPct = dram_pct[g] / params.compressionRatio;
        cost.ssdTotalPct = ssd_total_pct[g];
        // Iso-capacity on SSD: another ~10x below compressed memory.
        cost.ssdIsoDramPct = cost.compressedPct / params.ssdVsCompressed;
        cost.memoryPowerPct = power_pct[g];
        trend.push_back(cost);
    }
    return trend;
}

} // namespace tmo::costmodel
