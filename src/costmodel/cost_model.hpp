/**
 * @file
 * Infrastructure cost model (Fig. 1, §2.1).
 *
 * Computes DRAM, compressed-memory, and SSD cost as a percentage of
 * compute-infrastructure cost across hardware generations. Compressed
 * memory is estimated iso-capacity to DRAM at a 3x compression ratio
 * (the production average); SSD iso-capacity cost uses the ~10x
 * cost-per-byte advantage over compressed memory the paper reports.
 */

#pragma once

#include <string>
#include <vector>

namespace tmo::costmodel
{

/** Cost breakdown for one hardware generation, as % of server cost. */
struct GenerationCost {
    std::string generation;
    /** DRAM as % of infrastructure cost. */
    double memoryPct = 0.0;
    /** Delivering DRAM-equivalent capacity via 3x-compressed memory. */
    double compressedPct = 0.0;
    /** The server's NVMe SSD as % of cost. */
    double ssdTotalPct = 0.0;
    /** SSD capacity iso-capacity to DRAM as % of cost. */
    double ssdIsoDramPct = 0.0;
    /** DRAM power as % of infra power (trend mirrors cost). */
    double memoryPowerPct = 0.0;
};

/** Model parameters. */
struct CostModelParams {
    /** Average compression ratio (production average 3x). */
    double compressionRatio = 3.0;
    /** Cost-per-byte advantage of SSD over compressed memory. */
    double ssdVsCompressed = 10.0;
};

/**
 * Cost trajectory for generations 1..6 (§2.1: DRAM grows towards 33%
 * of server cost and 38% of power; SSD iso-capacity stays under 1%;
 * the full server SSD under 3%).
 */
std::vector<GenerationCost> costTrend(CostModelParams params = {});

} // namespace tmo::costmodel
